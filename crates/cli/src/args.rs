//! Hand-rolled argument parsing (no external dependencies).

use mstacks_core::{BadSpecMode, SamplePlan};
use mstacks_model::{CoreConfig, IdealFlags};
use mstacks_workloads::{spec, Workload};

/// A user-facing CLI error.
#[derive(Debug)]
pub struct CliError {
    message: String,
}

impl CliError {
    pub fn new(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

/// Parsed common options plus positional workload names.
#[derive(Debug, Clone)]
pub struct Options {
    pub positional: Vec<String>,
    pub core: CoreConfig,
    pub uops: u64,
    pub ideal: IdealFlags,
    pub badspec: BadSpecMode,
    pub json: bool,
    pub audit: bool,
    pub trace_out: Option<String>,
    pub sample: Option<SamplePlan>,
}

impl Options {
    /// Parses `argv`, expecting at least `min_positional` workload names.
    pub fn parse(argv: &[String], min_positional: usize) -> Result<Options, CliError> {
        let mut positional = Vec::new();
        let mut core = CoreConfig::broadwell();
        let mut uops = 300_000u64;
        let mut ideal = IdealFlags::none();
        let mut badspec = BadSpecMode::GroundTruth;
        let mut json = false;
        let mut audit = false;
        let mut trace_out = None;
        let mut sample = None;

        let mut it = argv.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--core" => {
                    let v = it
                        .next()
                        .ok_or_else(|| CliError::new("--core needs a value"))?;
                    core = parse_core(v)?;
                }
                "--core-file" => {
                    let v = it
                        .next()
                        .ok_or_else(|| CliError::new("--core-file needs a path"))?;
                    core =
                        CoreConfig::from_core_file(v).map_err(|e| CliError::new(e.to_string()))?;
                }
                "--uops" => {
                    let v = it
                        .next()
                        .ok_or_else(|| CliError::new("--uops needs a value"))?;
                    uops = v
                        .parse()
                        .map_err(|_| CliError::new(format!("bad --uops value `{v}`")))?;
                }
                "--ideal" => {
                    let v = it
                        .next()
                        .ok_or_else(|| CliError::new("--ideal needs a value"))?;
                    ideal = parse_ideal(v)?;
                }
                "--badspec" => {
                    let v = it
                        .next()
                        .ok_or_else(|| CliError::new("--badspec needs a value"))?;
                    badspec = parse_badspec(v)?;
                }
                "--json" => json = true,
                "--audit" => audit = true,
                "--trace-out" => {
                    let v = it
                        .next()
                        .ok_or_else(|| CliError::new("--trace-out needs a path"))?;
                    trace_out = Some(v.to_string());
                }
                "--sample" => {
                    let v = it
                        .next()
                        .ok_or_else(|| CliError::new("--sample needs warmup:detailed:ff"))?;
                    sample = Some(SamplePlan::parse(v).map_err(CliError::new)?);
                }
                flag if flag.starts_with("--") => {
                    return Err(CliError::new(format!("unknown flag `{flag}`")));
                }
                w => positional.push(w.to_string()),
            }
        }
        if positional.len() < min_positional {
            return Err(CliError::new(format!(
                "expected {min_positional} workload name(s); run `mstacks list`"
            )));
        }
        if uops == 0 {
            return Err(CliError::new("--uops must be positive"));
        }
        Ok(Options {
            positional,
            core,
            uops,
            ideal,
            badspec,
            json,
            audit,
            trace_out,
            sample,
        })
    }

    /// Resolves positional workload `i` by name.
    pub fn workload(&self, i: usize) -> Result<Workload, CliError> {
        let name = &self.positional[i];
        spec::by_name(name)
            .ok_or_else(|| CliError::new(format!("unknown workload `{name}`; run `mstacks list`")))
    }
}

pub fn parse_core(v: &str) -> Result<CoreConfig, CliError> {
    // Every built-in core resolves through its shipped `.core` table —
    // the CLI is a table consumer, with no path to the constructors.
    mstacks_model::coretab::builtin(v).ok_or_else(|| {
        CliError::new(format!(
            "unknown core `{v}` (use {})",
            mstacks_model::coretab::BUILTIN_NAMES.join(", ")
        ))
    })
}

fn parse_ideal(v: &str) -> Result<IdealFlags, CliError> {
    let mut f = IdealFlags::none();
    for part in v.split(',').filter(|p| !p.is_empty()) {
        f = match part {
            "icache" => f.with_perfect_icache(),
            "dcache" => f.with_perfect_dcache(),
            "bpred" => f.with_perfect_bpred(),
            "alu" => f.with_single_cycle_alu(),
            other => {
                return Err(CliError::new(format!(
                    "unknown ideal flag `{other}` (use icache, dcache, bpred, alu)"
                )))
            }
        };
    }
    Ok(f)
}

fn parse_badspec(v: &str) -> Result<BadSpecMode, CliError> {
    match v {
        "ground-truth" => Ok(BadSpecMode::GroundTruth),
        "simple" => Ok(BadSpecMode::SimpleRetireSlots),
        "speculative" => Ok(BadSpecMode::SpeculativeCounters),
        other => Err(CliError::new(format!(
            "unknown badspec mode `{other}` (use ground-truth, simple, speculative)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn defaults() {
        let o = Options::parse(&s(&["mcf"]), 1).unwrap();
        assert_eq!(o.positional, vec!["mcf"]);
        assert_eq!(o.core.name, "bdw");
        assert_eq!(o.uops, 300_000);
        assert!(o.ideal.is_baseline());
        assert!(!o.json);
        assert!(!o.audit);
        assert!(o.trace_out.is_none());
    }

    #[test]
    fn all_flags() {
        let o = Options::parse(
            &s(&[
                "mcf",
                "--core",
                "knl",
                "--uops",
                "5000",
                "--ideal",
                "dcache,bpred",
                "--badspec",
                "simple",
                "--json",
                "--audit",
                "--trace-out",
                "/tmp/trace.jsonl",
            ]),
            1,
        )
        .unwrap();
        assert_eq!(o.core.name, "knl");
        assert_eq!(o.uops, 5_000);
        assert!(o.ideal.perfect_dcache && o.ideal.perfect_bpred);
        assert!(!o.ideal.perfect_icache);
        assert_eq!(o.badspec, mstacks_core::BadSpecMode::SimpleRetireSlots);
        assert!(o.json);
        assert!(o.audit);
        assert_eq!(o.trace_out.as_deref(), Some("/tmp/trace.jsonl"));
    }

    #[test]
    fn table_only_cores_resolve() {
        // zen/atom have no constructor: --core reaches them through the
        // embedded tables.
        let o = Options::parse(&s(&["mcf", "--core", "zen"]), 1).unwrap();
        assert_eq!(o.core.name, "zen");
        assert_eq!(o.core.ports.len(), 11);
        let o = Options::parse(&s(&["mcf", "--core", "atom"]), 1).unwrap();
        assert_eq!(o.core.name, "atom");
    }

    #[test]
    fn core_file_loads_a_table() {
        let dir = std::env::temp_dir().join("mstacks-args-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("custom.core");
        let mut cfg = CoreConfig::skylake_server();
        cfg.name = "custom".to_string();
        std::fs::write(&path, cfg.to_table()).unwrap();
        let o = Options::parse(&s(&["mcf", "--core-file", path.to_str().unwrap()]), 1).unwrap();
        assert_eq!(o.core, cfg);
        assert!(Options::parse(&s(&["mcf", "--core-file", "/nonexistent.core"]), 1).is_err());
        assert!(Options::parse(&s(&["mcf", "--core-file"]), 1).is_err());
    }

    #[test]
    fn missing_positional_fails() {
        assert!(Options::parse(&s(&["--core", "bdw"]), 1).is_err());
    }

    #[test]
    fn unknown_flag_fails() {
        assert!(Options::parse(&s(&["mcf", "--bogus"]), 1).is_err());
    }

    #[test]
    fn bad_values_fail() {
        assert!(Options::parse(&s(&["mcf", "--core", "p4"]), 1).is_err());
        assert!(Options::parse(&s(&["mcf", "--uops", "abc"]), 1).is_err());
        assert!(Options::parse(&s(&["mcf", "--uops", "0"]), 1).is_err());
        assert!(Options::parse(&s(&["mcf", "--ideal", "magic"]), 1).is_err());
        assert!(Options::parse(&s(&["mcf", "--badspec", "oracle"]), 1).is_err());
        assert!(Options::parse(&s(&["mcf", "--trace-out"]), 1).is_err());
    }

    #[test]
    fn sample_flag_parses_a_plan() {
        let o = Options::parse(&s(&["mcf", "--sample", "500:2500:12000"]), 1).unwrap();
        let p = o.sample.expect("plan");
        assert_eq!((p.warmup, p.detailed, p.ff), (500, 2_500, 12_000));
        assert!(Options::parse(&s(&["mcf"]), 1).unwrap().sample.is_none());
        assert!(Options::parse(&s(&["mcf", "--sample"]), 1).is_err());
        assert!(Options::parse(&s(&["mcf", "--sample", "1:2"]), 1).is_err());
        assert!(Options::parse(&s(&["mcf", "--sample", "1:0:2"]), 1).is_err());
    }

    #[test]
    fn unknown_workload_resolution_fails() {
        let o = Options::parse(&s(&["not-a-workload"]), 1).unwrap();
        assert!(o.workload(0).is_err());
    }
}
