//! Human-readable output for the CLI subcommands.

use crate::args::{CliError, Options};
use mstacks_core::{Component, SampledReport, Session, SimReport, SmtReport, Stage};
use mstacks_model::IdealFlags;
use mstacks_stats::render::cpi_stack_lines;
use mstacks_stats::render::flops_stack_lines;
use mstacks_stats::TextTable;
use mstacks_workloads::Workload;

/// `mstacks simulate` text output.
pub fn print_simulate(w: &Workload, opts: &Options, r: &SimReport) {
    println!(
        "{} on {} [{}] — {} uops, {} cycles, CPI {:.3} (IPC {:.2})\n",
        w.name(),
        opts.core.name,
        r.ideal,
        r.result.committed_uops,
        r.result.cycles,
        r.cpi(),
        r.result.ipc(),
    );
    for s in r.multi.all_stacks() {
        println!("{}", cpi_stack_lines(s, 40));
    }
    println!(
        "memory: L1I {:.1}% / L1D {:.1}% / L2 {:.1}% miss; {} DRAM lines; {} dTLB walks",
        r.result.mem.l1i.miss_ratio() * 100.0,
        r.result.mem.l1d.miss_ratio() * 100.0,
        r.result.mem.l2.miss_ratio() * 100.0,
        r.result.mem.dram_accesses,
        r.result.mem.dtlb_misses,
    );
    println!(
        "branches: {} mispredicts ({:.1} MPKI); {} squashed micro-ops",
        r.result.frontend.mispredicts,
        r.result.frontend.mispredicts as f64 / (r.result.committed_uops as f64 / 1000.0),
        r.result.stats.squashed_uops,
    );
}

/// `mstacks simulate --sample` text output: aggregate stacks plus the
/// sampling statistics (windows, measured fraction, per-component CIs at
/// the commit stage).
pub fn print_sampled(w: &Workload, opts: &Options, s: &SampledReport) {
    println!(
        "{} on {} [{}] — sampled {}:{}:{} (warmup:detailed:ff)\n\
         {} of {} uops measured ({:.1}%) in {} windows\n\
         CPI {:.3} ± {:.3} (95% CI over windows)\n",
        w.name(),
        opts.core.name,
        s.report.ideal,
        s.plan.warmup,
        s.plan.detailed,
        s.plan.ff,
        s.sampled_uops,
        s.total_uops,
        s.sampled_fraction() * 100.0,
        s.windows,
        s.cpi_mean,
        s.cpi_ci95,
    );
    for stack in s.report.multi.all_stacks() {
        println!("{}", cpi_stack_lines(stack, 40));
    }
    println!("commit-stage component confidence (mean CPI ± 95% CI):");
    for c in s
        .components
        .iter()
        .filter(|c| c.stage == Stage::Commit && c.mean_cpi > 1e-9)
    {
        println!(
            "  {:<12} {:.4} ± {:.4}",
            c.component.label(),
            c.mean_cpi,
            c.ci95
        );
    }
}

/// `mstacks bounds` text output: bound table plus live verification.
pub fn print_bounds(w: &Workload, opts: &Options) -> Result<(), CliError> {
    let base = Session::new(opts.core.clone())
        .audit(opts.audit)
        .run(w.trace(opts.uops))
        .map_err(|e| CliError::new(format!("simulation failed: {e}")))?;
    println!(
        "{} on {}: CPI {:.3}; multi-stage recovery bounds:\n",
        w.name(),
        opts.core.name,
        base.cpi()
    );
    let mut t = TextTable::new(vec![
        "component".into(),
        "bounds [lo, hi]".into(),
        "verified dCPI".into(),
        "verdict".into(),
    ]);
    let checks: [(Component, IdealFlags); 4] = [
        (Component::Icache, IdealFlags::none().with_perfect_icache()),
        (Component::Bpred, IdealFlags::none().with_perfect_bpred()),
        (Component::Dcache, IdealFlags::none().with_perfect_dcache()),
        (
            Component::AluLat,
            IdealFlags::none().with_single_cycle_alu(),
        ),
    ];
    for (c, ideal) in checks {
        let (lo, hi) = base.multi.bounds(c);
        if hi < 0.005 {
            continue;
        }
        let r = Session::new(opts.core.clone())
            .with_ideal(ideal)
            .audit(opts.audit)
            .run(w.trace(opts.uops))
            .map_err(|e| CliError::new(format!("simulation failed: {e}")))?;
        let actual = base.cpi() - r.cpi();
        t.row(vec![
            c.label().into(),
            format!("[{lo:.3}, {hi:.3}]"),
            format!("{actual:+.3}"),
            if base.multi.contains(c, actual) {
                "within".into()
            } else {
                "outside (second-order)".into()
            },
        ]);
    }
    println!("{t}");
    Ok(())
}

/// `mstacks flops` text output.
pub fn print_flops(w: &Workload, opts: &Options, r: &SimReport) {
    let f = opts.core.freq_ghz;
    println!(
        "{} on {}: {:.1} / {:.1} GFLOPS at {:.1} GHz (IPC {:.2} of {})\n",
        w.name(),
        opts.core.name,
        r.gflops(f),
        opts.core.peak_gflops(),
        f,
        r.result.ipc(),
        opts.core.accounting_width(),
    );
    print!("{}", flops_stack_lines(&r.flops, f, 40));
}

/// `mstacks compare` text output: one workload across all core presets.
pub fn print_compare(w: &Workload, opts: &Options) -> Result<(), CliError> {
    use mstacks_model::CoreConfig;
    let mut t = TextTable::new(vec![
        "core".into(),
        "CPI".into(),
        "IPC".into(),
        "icache".into(),
        "bpred".into(),
        "dcache".into(),
        "alu_lat".into(),
        "depend".into(),
        "GFLOPS".into(),
    ]);
    for cfg in [
        CoreConfig::broadwell(),
        CoreConfig::knights_landing(),
        CoreConfig::skylake_server(),
    ] {
        let r = Session::new(cfg.clone())
            .audit(opts.audit)
            .run(w.trace(opts.uops))
            .map_err(|e| CliError::new(format!("simulation failed: {e}")))?;
        let c = &r.multi.commit;
        t.row(vec![
            cfg.name.clone(),
            format!("{:.3}", r.cpi()),
            format!("{:.2}", r.result.ipc()),
            format!("{:.3}", c.cpi_of(Component::Icache)),
            format!("{:.3}", c.cpi_of(Component::Bpred)),
            format!("{:.3}", c.cpi_of(Component::Dcache)),
            format!("{:.3}", c.cpi_of(Component::AluLat)),
            format!("{:.3}", c.cpi_of(Component::Depend)),
            format!("{:.1}", r.gflops(cfg.freq_ghz)),
        ]);
    }
    println!(
        "{} across the core presets ({} uops, commit-stage components):\n",
        w.name(),
        opts.uops
    );
    println!("{t}");
    Ok(())
}

/// `mstacks crosscheck` text output: oracle prediction vs simulator
/// measurement, per component.
pub fn print_crosscheck(
    w: &Workload,
    opts: &Options,
    r: &SimReport,
    cmp: &mstacks_core::StackComparison,
) {
    println!(
        "{} on {} [{}]: measured CPI {:.3}; analytical oracle vs simulator:\n",
        w.name(),
        opts.core.name,
        r.ideal,
        r.cpi()
    );
    let mut t = TextTable::new(vec![
        "component".into(),
        "oracle [lo, hi]".into(),
        "simulator [lo, hi]".into(),
        "margin".into(),
        "verdict".into(),
    ]);
    for c in &cmp.checks {
        t.row(vec![
            c.label.clone(),
            format!("[{:.3}, {:.3}]", c.predicted.lo, c.predicted.hi),
            format!("[{:.3}, {:.3}]", c.measured.lo, c.measured.hi),
            format!("{:.3}", c.margin),
            if c.pass() {
                "agree".into()
            } else {
                format!("DIVERGED by {:.4}", c.gap)
            },
        ]);
    }
    println!("{t}");
}

/// `mstacks corun` text output: per-core stacks with the interference
/// component, then the shared-resource occupancy summary.
pub fn print_corun(names: &[String], opts: &Options, r: &mstacks_core::CoRunReport) {
    for (c, (core, share)) in r.cores.iter().zip(&r.shared.cores).enumerate() {
        // Request-cycles, not wall-clock: concurrent delayed requests
        // each count, so this can exceed the core's cycle count.
        println!(
            "core {c} ({}) on {}: CPI {:.3} over {} cycles; {} interference request-cycles",
            names.get(c).map(String::as_str).unwrap_or("?"),
            opts.core.name,
            core.cpi(),
            core.result.cycles,
            share.interference_cycles,
        );
        print!("{}", cpi_stack_lines(&core.multi.commit, 40));
        println!();
    }
    let s = &r.shared;
    println!(
        "shared uncore: L3 {} accesses / {} misses; {} DRAM lines, {} queue cycles; {} MSHRs",
        s.l3_accesses, s.l3_misses, s.dram_accesses, s.dram_queue_cycles, s.mshr_capacity,
    );
    for (c, share) in s.cores.iter().enumerate() {
        println!(
            "  core {c}: L3 {}/{} acc/miss, {} DRAM lines, {} queue cycles; delayed others {}×",
            share.l3_accesses,
            share.l3_misses,
            share.dram_accesses,
            share.dram_queue_cycles,
            share.delays_caused,
        );
    }
}

/// `mstacks smt` text output.
pub fn print_smt(names: &[String], r: &SmtReport) {
    for (tid, t) in r.threads.iter().enumerate() {
        println!(
            "thread {tid} ({}): CPI {:.3} over {} cycles",
            names.get(tid).map(String::as_str).unwrap_or("?"),
            t.cpi(),
            t.result.cycles
        );
        print!("{}", cpi_stack_lines(&t.multi.commit, 40));
        println!();
    }
}
