//! `mstacks` — command-line interface to the multi-stage CPI / FLOPS
//! stack simulator.
//!
//! ```text
//! mstacks list                                 all built-in workloads/cores
//! mstacks simulate <workload> [options]        run + print all stacks
//! mstacks bounds   <workload> [options]        bound table + verification
//! mstacks flops    <workload> [options]        FLOPS stack (HPC view)
//! mstacks smt      <w0> <w1> [options]         2-way SMT per-thread stacks
//! mstacks corun    <w0> <w1> [w2 w3] [options] multi-core co-run with interference stacks
//! mstacks compare  <workload> [options]        one workload across all cores
//! mstacks trace    <workload> [options]        dump the micro-op stream head
//! mstacks crosscheck <workload> [options]      differential oracle vs simulator
//! mstacks cores [list|dump <name>|check <f>…]  declarative core tables
//! mstacks serve [--addr H:P] [options]         HTTP analysis service (cached, backpressured)
//!
//! options:
//!   --core NAME             built-in core table (default bdw)
//!   --core-file PATH        load a .core table file instead
//!   --uops N                micro-ops to simulate (default 300000)
//!   --ideal FLAGS           comma list: icache,dcache,bpred,alu
//!   --badspec MODE          ground-truth|simple|speculative
//!   --json                  machine-readable output
//!   --audit                 verify per-cycle accounting invariants
//!   --trace-out PATH        write a JSONL pipetrace (implies auditing)
//!   --sample W:D:F          interval sampling (simulate): W warmup +
//!                           D detailed + F fast-forwarded uops per period
//! ```

mod args;
use mstacks_core::jsonfmt as json;
mod output;

use args::{CliError, Options};
use mstacks_core::{AuditOptions, AuditReport, CoRun, Session};
use mstacks_model::{coretab, CoreConfig};
use mstacks_workloads::{spec, SharedTraceBuffer, TraceBuffer, Workload};
use std::process::ExitCode;
use std::sync::Arc;

/// One pre-decoded buffer per workload, with equal workloads (equality
/// means byte-identical traces) sharing a single capture — multi-core
/// commands decode a homogeneous co-run once instead of once per core.
fn capture_shared(workloads: &[Workload], uops: u64) -> Vec<Arc<TraceBuffer>> {
    let mut bufs: Vec<Arc<TraceBuffer>> = Vec::with_capacity(workloads.len());
    for (i, w) in workloads.iter().enumerate() {
        match workloads[..i].iter().position(|prev| prev == w) {
            Some(j) => bufs.push(bufs[j].clone()),
            None => bufs.push(TraceBuffer::capture(w, uops).shared()),
        }
    }
    bufs
}

/// Runs a co-run over `traces` (audited when the options ask for it),
/// generic over the feed so callers can pass either streaming generators
/// or shared-capture cursors without boxing the hot path.
fn drive_corun<I: Iterator<Item = mstacks_model::MicroOp>>(
    corun: &CoRun,
    traces: Vec<I>,
    opts: &Options,
) -> Result<(mstacks_core::CoRunReport, Option<AuditReport>), CliError> {
    match audit_options(opts)? {
        Some(a) => {
            let (r, audit) = corun
                .run_audited(traces, a)
                .map_err(|e| CliError::new(format!("simulation failed: {e}")))?;
            check_audit(&audit)?;
            Ok((r, Some(audit)))
        }
        None => Ok((
            corun
                .run(traces)
                .map_err(|e| CliError::new(format!("simulation failed: {e}")))?,
            None,
        )),
    }
}

/// Builds audit options for `--audit` / `--trace-out`, opening the JSONL
/// pipetrace file when one was requested. `None` when neither flag is set.
fn audit_options(opts: &Options) -> Result<Option<AuditOptions>, CliError> {
    if !opts.audit && opts.trace_out.is_none() {
        return Ok(None);
    }
    let mut a = AuditOptions::default();
    if let Some(path) = &opts.trace_out {
        let f = std::fs::File::create(path)
            .map_err(|e| CliError::new(format!("cannot create `{path}`: {e}")))?;
        a = a.with_trace(Box::new(std::io::BufWriter::new(f)));
    }
    Ok(Some(a))
}

/// Prints audit findings as structured diagnostics on stderr and turns a
/// dirty report into a failing exit status.
fn check_audit(audit: &AuditReport) -> Result<(), CliError> {
    for v in &audit.violations {
        eprintln!("audit: {v}");
    }
    if audit.is_clean() {
        Ok(())
    } else {
        Err(CliError::new(format!(
            "audit failed: {} invariant violation(s) across {} thread-cycles",
            audit.violations.len() + audit.dropped,
            audit.cycles_checked,
        )))
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `mstacks help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(argv: &[String]) -> Result<(), CliError> {
    let Some(cmd) = argv.first() else {
        print_help();
        return Ok(());
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        "list" => {
            println!("workloads:");
            for w in spec::all() {
                println!("  {}", w.name());
            }
            println!("cores: {}", coretab::BUILTIN_NAMES.join(", "));
            Ok(())
        }
        "cores" => cores_command(&argv[1..]),
        "simulate" => {
            let opts = Options::parse(&argv[1..], 1)?;
            let w = opts.workload(0)?;
            let session = Session::new(opts.core.clone())
                .with_ideal(opts.ideal)
                .with_badspec(opts.badspec);
            if let Some(plan) = opts.sample {
                if opts.audit || opts.trace_out.is_some() {
                    return Err(CliError::new(
                        "--sample cannot be combined with --audit/--trace-out \
                         (sampled windows are not audited; run both modes separately)",
                    ));
                }
                let buf = TraceBuffer::capture(&w, opts.uops).shared();
                let sampled = session
                    .run_sampled(opts.uops, plan, &buf)
                    .map_err(|e| CliError::new(format!("simulation failed: {e}")))?;
                if opts.json {
                    println!("{}", json::sampled_report(&sampled));
                } else {
                    output::print_sampled(&w, &opts, &sampled);
                }
                return Ok(());
            }
            let (report, audit) = match audit_options(&opts)? {
                Some(a) => {
                    let (r, audit) = session
                        .run_audited(w.trace(opts.uops), a)
                        .map_err(|e| CliError::new(format!("simulation failed: {e}")))?;
                    check_audit(&audit)?;
                    (r, Some(audit))
                }
                None => (
                    session
                        .run(w.trace(opts.uops))
                        .map_err(|e| CliError::new(format!("simulation failed: {e}")))?,
                    None,
                ),
            };
            if opts.json {
                println!("{}", json::sim_report(&report, audit.as_ref()));
            } else {
                output::print_simulate(&w, &opts, &report);
            }
            Ok(())
        }
        "bounds" => {
            let opts = Options::parse(&argv[1..], 1)?;
            let w = opts.workload(0)?;
            output::print_bounds(&w, &opts)
        }
        "flops" => {
            let opts = Options::parse(&argv[1..], 1)?;
            let w = opts.workload(0)?;
            let session = Session::new(opts.core.clone()).with_ideal(opts.ideal);
            let (report, audit) = match audit_options(&opts)? {
                Some(a) => {
                    let (r, audit) = session
                        .run_audited(w.trace(opts.uops), a)
                        .map_err(|e| CliError::new(format!("simulation failed: {e}")))?;
                    check_audit(&audit)?;
                    (r, Some(audit))
                }
                None => (
                    session
                        .run(w.trace(opts.uops))
                        .map_err(|e| CliError::new(format!("simulation failed: {e}")))?,
                    None,
                ),
            };
            if opts.json {
                println!(
                    "{}",
                    json::flops_report(&report, opts.core.freq_ghz, audit.as_ref())
                );
            } else {
                output::print_flops(&w, &opts, &report);
            }
            Ok(())
        }
        "crosscheck" => {
            let opts = Options::parse(&argv[1..], 1)?;
            let w = opts.workload(0)?;
            // One capture feeds both the oracle profile and the detailed
            // run (the buffer round-trip is lossless).
            let buf = TraceBuffer::capture(&w, opts.uops).shared();
            let summary =
                mstacks_oracle::WorkloadSummary::profile(&opts.core, opts.ideal, buf.cursor());
            let prediction = mstacks_oracle::predict(&opts.core, &summary);
            let bound = mstacks_oracle::static_port_bound(&opts.core, opts.ideal, &summary);
            let report = Session::new(opts.core.clone())
                .with_ideal(opts.ideal)
                .audit(opts.audit)
                .run(buf.cursor())
                .map_err(|e| CliError::new(format!("simulation failed: {e}")))?;
            let cmp = mstacks_oracle::crosscheck_static(
                &prediction,
                &bound,
                &report.multi,
                &mstacks_oracle::ToleranceBands::default(),
            );
            if opts.json {
                println!(
                    "{}",
                    json::crosscheck_report(&w.name(), &opts.core.name, &cmp)
                );
            } else {
                output::print_crosscheck(&w, &opts, &report, &cmp);
            }
            if cmp.pass() {
                Ok(())
            } else {
                Err(CliError::new(format!(
                    "oracle and simulator diverge on {} component(s)",
                    cmp.failures().count()
                )))
            }
        }
        "trace" => {
            let opts = Options::parse(&argv[1..], 1)?;
            let w = opts.workload(0)?;
            let n = opts.uops.min(200);
            println!("first {n} micro-ops of {}:", w.name());
            for (i, u) in w.trace(n).enumerate() {
                let srcs: Vec<String> = u.srcs().map(|r| r.to_string()).collect();
                println!(
                    "{i:>5}  pc={:#x}  {:<38} srcs=[{}] dst={}{}",
                    u.pc,
                    format!("{:?}", u.kind),
                    srcs.join(","),
                    u.dst.map(|r| r.to_string()).unwrap_or_else(|| "-".into()),
                    if u.microcoded { "  [ucode]" } else { "" },
                );
            }
            Ok(())
        }
        "compare" => {
            let opts = Options::parse(&argv[1..], 1)?;
            let w = opts.workload(0)?;
            output::print_compare(&w, &opts)
        }
        "corun" => {
            let opts = Options::parse(&argv[1..], 2)?;
            if opts.positional.len() > 4 {
                return Err(CliError::new(format!(
                    "corun takes 2-4 workloads (one per core), got {}",
                    opts.positional.len()
                )));
            }
            if opts.sample.is_some() {
                return Err(CliError::new(
                    "--sample is not supported for co-run sessions: interval sampling \
                     fast-forwards each core independently, which would desynchronize \
                     the shared-uncore arbitration the interference component measures \
                     (run the cores in full detail, or sample each workload solo)",
                ));
            }
            let workloads: Vec<_> = (0..opts.positional.len())
                .map(|i| opts.workload(i))
                .collect::<Result<_, _>>()?;
            let names: Vec<String> = workloads.iter().map(|w| w.name()).collect();
            let corun = CoRun::new(opts.core.clone())
                .with_ideal(opts.ideal)
                .with_badspec(opts.badspec);
            // A one-shot co-run with all-distinct workloads gains nothing
            // from the capture-then-replay round trip (each trace would be
            // decoded once either way, plus a full buffer write/read); only
            // duplicated workloads amortize a shared capture. The buffer
            // round-trips bit-identically, so both paths produce the same
            // report.
            let any_dup = workloads
                .iter()
                .enumerate()
                .any(|(i, w)| workloads[..i].contains(w));
            let (report, audit) = if any_dup {
                let bufs = capture_shared(&workloads, opts.uops);
                drive_corun(&corun, bufs.iter().map(|b| b.cursor()).collect(), &opts)?
            } else {
                let traces = workloads.iter().map(|w| w.trace(opts.uops)).collect();
                drive_corun(&corun, traces, &opts)?
            };
            if opts.json {
                println!("{}", json::corun_report(&names, &report, audit.as_ref()));
            } else {
                output::print_corun(&names, &opts, &report);
            }
            Ok(())
        }
        "smt" => {
            let opts = Options::parse(&argv[1..], 2)?;
            let w0 = opts.workload(0)?;
            let w1 = opts.workload(1)?;
            let session = Session::new(opts.core.clone()).with_ideal(opts.ideal);
            let bufs = capture_shared(&[w0.clone(), w1.clone()], opts.uops);
            let traces = bufs.iter().map(|b| b.cursor()).collect();
            let (report, audit) = match audit_options(&opts)? {
                Some(a) => {
                    let (r, audit) = session
                        .run_threads_audited(traces, a)
                        .map_err(|e| CliError::new(format!("simulation failed: {e}")))?;
                    check_audit(&audit)?;
                    (r, Some(audit))
                }
                None => (
                    session
                        .run_threads(traces)
                        .map_err(|e| CliError::new(format!("simulation failed: {e}")))?,
                    None,
                ),
            };
            if opts.json {
                println!("{}", json::smt_report(&report, audit.as_ref()));
            } else {
                output::print_smt(&[w0.name(), w1.name()], &report);
            }
            Ok(())
        }
        "serve" => serve_command(&argv[1..]),
        other => Err(CliError::new(format!("unknown command `{other}`"))),
    }
}

/// `mstacks serve [--addr HOST:PORT] [--shards N] [--cache-mb N]
/// [--debt-budget UOPS] [--fast-lane UOPS]` — boots the analysis service
/// and blocks until killed.
fn serve_command(args: &[String]) -> Result<(), CliError> {
    let mut cfg = mstacks_serve::ServerConfig {
        addr: "127.0.0.1:8080".to_string(),
        ..mstacks_serve::ServerConfig::default()
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .ok_or_else(|| CliError::new(format!("{flag} needs {what}")))
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value("HOST:PORT")?.clone(),
            "--shards" => {
                cfg.shards = value("a worker count")?
                    .parse()
                    .map_err(|_| CliError::new("--shards needs an integer".to_string()))?;
                if cfg.shards == 0 {
                    return Err(CliError::new("--shards must be at least 1".to_string()));
                }
            }
            "--cache-mb" => {
                let mb: usize = value("a size in MiB")?
                    .parse()
                    .map_err(|_| CliError::new("--cache-mb needs an integer".to_string()))?;
                cfg.cache_bytes = mb << 20;
            }
            "--debt-budget" => {
                cfg.debt_budget_uops = value("a µop budget")?
                    .parse()
                    .map_err(|_| CliError::new("--debt-budget needs an integer".to_string()))?;
            }
            "--fast-lane" => {
                cfg.fast_lane_uops = value("a µop threshold")?
                    .parse()
                    .map_err(|_| CliError::new("--fast-lane needs an integer".to_string()))?;
            }
            other => return Err(CliError::new(format!("unknown serve flag `{other}`"))),
        }
    }
    let handle = mstacks_serve::Server::spawn(cfg)
        .map_err(|e| CliError::new(format!("cannot start server: {e}")))?;
    println!("mstacks serve listening on http://{}", handle.addr());
    println!("  POST /v1/simulate  /v1/sweep  /v1/corun   GET /healthz /v1/stats");
    // Serve until the process is killed; the handle's workers own all
    // the state, so parking the main thread is all that's left to do.
    loop {
        std::thread::park();
    }
}

/// `mstacks cores …` — the declarative machine-model toolbox:
/// `list` the built-in tables, `dump` one as a canonical `.core` file,
/// `check` (parse + validate + round-trip) table files on disk.
fn cores_command(argv: &[String]) -> Result<(), CliError> {
    match argv.first().map(String::as_str).unwrap_or("list") {
        "list" => {
            for name in coretab::BUILTIN_NAMES {
                let cfg = args::parse_core(name)?;
                println!(
                    "{:<5} {}-wide, rob {:>3}, {:>2} ports, {} GHz  ({} lines)",
                    name,
                    cfg.dispatch_width,
                    cfg.rob_size,
                    cfg.ports.len(),
                    cfg.freq_ghz,
                    coretab::builtin_source(name)
                        .expect("shipped table")
                        .lines()
                        .count(),
                );
            }
            Ok(())
        }
        "dump" => {
            let name = argv
                .get(1)
                .ok_or_else(|| CliError::new("usage: mstacks cores dump <name>"))?;
            print!("{}", args::parse_core(name)?.to_table());
            Ok(())
        }
        "check" => {
            let paths = &argv[1..];
            if paths.is_empty() {
                return Err(CliError::new("usage: mstacks cores check <file.core>..."));
            }
            for path in paths {
                let cfg = CoreConfig::from_core_file(path)
                    .map_err(|e| CliError::new(format!("{path}: {e}")))?;
                coretab::roundtrip(&cfg).map_err(|e| CliError::new(format!("{path}: {e}")))?;
                println!(
                    "{path}: ok — {} ({}-wide, {} ports)",
                    cfg.name,
                    cfg.dispatch_width,
                    cfg.ports.len()
                );
            }
            Ok(())
        }
        other => Err(CliError::new(format!(
            "unknown cores subcommand `{other}` (use list, dump, check)"
        ))),
    }
}

fn print_help() {
    println!(
        "mstacks — multi-stage CPI stacks and FLOPS stacks (ISPASS 2018)\n\n\
         usage:\n\
         \x20 mstacks list\n\
         \x20 mstacks simulate <workload> [--core C] [--uops N] [--ideal F] [--badspec M] [--json]\n\
         \x20                             [--sample W:D:F]  (interval sampling with 95% CIs)\n\
         \x20 mstacks bounds   <workload> [--core C] [--uops N] [--json]\n\
         \x20 mstacks flops    <workload> [--core C] [--uops N] [--json]\n\
         \x20 mstacks smt      <w0> <w1>  [--core C] [--uops N] [--json]\n\
         \x20 mstacks corun    <w0> <w1> [w2 w3]  [--core C] [--uops N] [--json] [--audit]\n\
         \x20                             (2-4 cores sharing L3/MSHRs/DRAM; per-core\n\
         \x20                              stacks gain an `interference` component)\n\
         \x20 mstacks compare  <workload> [--uops N]\n\
         \x20 mstacks trace    <workload> [--uops N]\n\
         \x20 mstacks crosscheck <workload> [--core C] [--uops N] [--ideal F] [--json]\n\
         \x20 mstacks cores [list | dump <name> | check <file.core>...]\n\
         \x20 mstacks serve [--addr H:P] [--shards N] [--cache-mb N]\n\
         \x20               [--debt-budget UOPS] [--fast-lane UOPS]\n\
         \x20                             (HTTP analysis service: POST /v1/simulate,\n\
         \x20                              /v1/sweep, /v1/corun; cached, backpressured)\n\n\
         cores: bdw (Broadwell), knl (Knights Landing), skx (Skylake-SP),\n\
         \x20      zen (Zen-class, table-only), atom (narrow in-order-class, table-only)\n\
         \x20      — every core is a declarative table; --core-file PATH loads your own\n\
         ideal flags (comma list): icache, dcache, bpred, alu\n\
         badspec modes: ground-truth (default), simple, speculative\n\
         audit: --audit verifies per-cycle accounting invariants (all commands);\n\
         \x20      --trace-out PATH writes a JSONL pipetrace (simulate/flops/smt)"
    );
}
