//! Golden-snapshot tests for the `--json` output schema.
//!
//! Numeric values vary with the simulated workload, so every number is
//! normalized to `N` before comparison; what these tests pin down is the
//! *schema* — field names, field order, component ordering inside each
//! stack, stage ordering, and the always-present `audit` field. Any change
//! to the JSON layer that would break downstream consumers shows up here
//! as a snapshot diff.

use std::process::Command;

/// Runs the `mstacks` binary and returns stdout (panics on failure).
fn mstacks(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_mstacks"))
        .args(args)
        .output()
        .expect("spawn mstacks");
    assert!(
        out.status.success(),
        "mstacks {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

/// Replaces every JSON number (including sign, decimals, exponents) with
/// the placeholder `N`, leaving names, strings, booleans, and null alone.
fn normalize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.trim().chars().peekable();
    while let Some(c) = chars.next() {
        let starts_number =
            c.is_ascii_digit() || (c == '-' && chars.peek().is_some_and(|d| d.is_ascii_digit()));
        if starts_number {
            while let Some(&d) = chars.peek() {
                if d.is_ascii_digit() || matches!(d, '.' | 'e' | 'E' | '+' | '-') {
                    chars.next();
                } else {
                    break;
                }
            }
            out.push('N');
        } else {
            out.push(c);
        }
    }
    out
}

const COMPONENTS: &str = "{\"base\":N,\"icache\":N,\"bpred\":N,\"dcache\":N,\
\"alu_lat\":N,\"depend\":N,\"microcode\":N,\"memconflict\":N,\"smt\":N,\
\"interference\":N,\"other\":N}";

const FLOPS: &str = "{\"flops_per_cycle\":N,\"peak_per_cycle\":N,\"normalized\":\
{\"base\":N,\"non_fma\":N,\"mask\":N,\"frontend\":N,\"non_vfp\":N,\"memory\":N,\"depend\":N}}";

fn stage(name: &str) -> String {
    format!("{{\"stage\":\"{name}\",\"cpi\":N,\"components\":{COMPONENTS}}}")
}

fn sim_golden(audit: &str) -> String {
    format!(
        "{{\"config\":\"bdw\",\"ideal\":\"baseline\",\"cycles\":N,\"uops\":N,\"cpi\":N,\
\"stacks\":[{},{},{},{}],\"flops\":{FLOPS},\"audit\":{audit}}}",
        stage("fetch"),
        stage("dispatch"),
        stage("issue"),
        stage("commit"),
    )
}

#[test]
fn simulate_json_schema_is_stable() {
    let got = normalize(&mstacks(&["simulate", "mcf", "--uops", "2000", "--json"]));
    assert_eq!(got, sim_golden("null"));
}

#[test]
fn simulate_json_audit_field_is_populated_under_audit() {
    let got = normalize(&mstacks(&[
        "simulate", "mcf", "--uops", "2000", "--json", "--audit",
    ]));
    assert_eq!(
        got,
        sim_golden("{\"clean\":true,\"violations\":N,\"cycles_checked\":N}")
    );
}

#[test]
fn flops_json_schema_is_stable() {
    let got = normalize(&mstacks(&["flops", "povray", "--uops", "2000", "--json"]));
    assert_eq!(
        got,
        format!(
            "{{\"config\":\"bdw\",\"gflops\":N,\"peak_gflops\":N,\"stack\":{FLOPS},\"audit\":null}}"
        )
    );
}

#[test]
fn smt_json_schema_is_stable() {
    let got = normalize(&mstacks(&[
        "smt", "mcf", "leela", "--uops", "2000", "--json",
    ]));
    // SMT stacks carry no fetch stage: per-thread accounting starts at
    // dispatch (the shared frontend is attributed via the smt component).
    let thread = format!(
        "{{\"cycles\":N,\"uops\":N,\"cpi\":N,\"stacks\":[{},{},{}]}}",
        stage("dispatch"),
        stage("issue"),
        stage("commit"),
    );
    assert_eq!(
        got,
        format!("{{\"threads\":[{thread},{thread}],\"audit\":null}}")
    );
}

#[test]
fn corun_json_schema_is_stable() {
    let got = normalize(&mstacks(&[
        "corun", "mcf", "lbm", "--uops", "2000", "--json",
    ]));
    // Co-run cores are full single-thread pipelines: all four stage
    // stacks, fetch included, each carrying the always-present
    // interference component.
    let core = |w: &str| {
        format!(
            "{{\"core\":N,\"workload\":\"{w}\",\"cycles\":N,\"uops\":N,\"cpi\":N,\
\"interference_cycles\":N,\"stacks\":[{},{},{},{}]}}",
            stage("fetch"),
            stage("dispatch"),
            stage("issue"),
            stage("commit"),
        )
    };
    let share = "{\"lN_accesses\":N,\"lN_misses\":N,\"dram_accesses\":N,\
\"dram_queue_cycles\":N,\"interference_cycles\":N,\"delays_caused\":N}";
    assert_eq!(
        got,
        format!(
            "{{\"cores\":[{},{}],\"shared\":{{\"lN_accesses\":N,\"lN_misses\":N,\
\"dram_accesses\":N,\"dram_queue_cycles\":N,\"mshr_capacity\":N,\
\"cores\":[{share},{share}]}},\"audit\":null}}",
            core("mcf"),
            core("lbm"),
        )
    );
}

#[test]
fn corun_json_audit_field_is_populated_under_audit() {
    let got = normalize(&mstacks(&[
        "corun", "mcf", "lbm", "--uops", "2000", "--json", "--audit",
    ]));
    assert!(
        got.ends_with(",\"audit\":{\"clean\":true,\"violations\":N,\"cycles_checked\":N}}"),
        "audited corun JSON tail: …{}",
        &got[got.len().saturating_sub(80)..]
    );
}

#[test]
fn corun_rejects_interval_sampling_with_a_structured_error() {
    // `--sample` assumes a single engine it can fast-forward; a co-run
    // must refuse it up front rather than silently sampling core 0.
    let out = Command::new(env!("CARGO_BIN_EXE_mstacks"))
        .args(["corun", "mcf", "lbm", "--sample", "500:2500:12000"])
        .output()
        .expect("spawn mstacks");
    assert!(!out.status.success(), "corun --sample must fail");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("--sample is not supported for co-run sessions"),
        "stderr: {err}"
    );
    assert!(out.stdout.is_empty(), "no partial output on rejection");
}

#[test]
fn crosscheck_json_schema_is_stable() {
    let got = normalize(&mstacks(&["crosscheck", "mcf", "--uops", "2000", "--json"]));
    let check = |c: &str| {
        format!(
            "{{\"component\":\"{c}\",\"predicted\":[N,N],\"measured\":[N,N],\
\"margin\":N,\"gap\":N,\"pass\":true}}"
        )
    };
    let checks: Vec<String> = [
        "base",
        "icache",
        "branch",
        "memory",
        "execute",
        "depend",
        "microcode",
        "total",
        "static-port",
    ]
    .iter()
    .map(|c| check(c))
    .collect();
    assert_eq!(
        got,
        format!(
            "{{\"workload\":\"mcf\",\"config\":\"bdw\",\"pass\":true,\"checks\":[{}]}}",
            checks.join(",")
        )
    );
}
