//! The unified, thread-parameterized out-of-order engine.
//!
//! One implementation of every pipeline stage (branch resolution, commit,
//! issue, dispatch, fetch), generic over the number of hardware-thread
//! contexts. A single-thread [`Engine`] is cycle-for-cycle identical to
//! the historical single-core pipeline; with 2–4 threads it implements the
//! Intel-style SMT sharing model the paper's §V-C per-thread accounting
//! runs on:
//!
//! * each thread owns a frontend, rename table, store queue and a
//!   *partitioned* ROB / load queue (capacity / threads);
//! * the reservation stations, execution ports, caches/TLBs and DRAM are
//!   shared;
//! * fetch alternates round-robin cycle by cycle; dispatch and commit
//!   share their stage widths with per-cycle round-robin priority.
//!
//! Each thread gets its own [`StageObserver`]; cycles a thread loses to a
//! co-runner's occupancy are flagged `smt_blocked` in its views, which the
//! accountants turn into the `Smt` CPI component. On a 1-thread engine the
//! SMT-blame signals are hard-wired off, so the observer sees exactly what
//! the single-core pipeline always produced.
//!
//! # Hot-loop structure
//!
//! The per-cycle stages run allocation-free in steady state: the
//! reservation stations are per-thread partitions with an explicit
//! wakeup-driven ready queue (see the [`crate::sched`] module docs), the
//! ROB is a ring with O(1) sequence-number lookup, all per-stage scratch
//! lives in fixed `[T; MAX_THREADS]` arrays or engine-owned reusable
//! buffers, and squash recovery adjusts occupancy counters incrementally
//! instead of recounting the window. The observer-visible issue order is
//! an invariant across all of this: oldest-first within a thread,
//! dispatch-order (round-robin) interleaved across threads — exactly the
//! order the old unified RS vector produced.
//!
//! The thin [`Core`](crate::Core) and [`SmtCore`](crate::SmtCore) types
//! are shims over this engine; the canonical API surface lives here
//! ([`Engine::results`], [`Engine::committed`], [`Engine::cycle`]).

use crate::exec::PortFile;
use crate::lsq::{LoadCheck, StoreQueue};
use crate::observer::{
    Blame, CommitView, CycleEndView, DispatchView, FetchView, FlopsBlame, IssueView, IssuedInfo,
    StageObserver, StructuralStall,
};
use crate::result::{PipelineError, PipelineResult, PipelineStats, StallStage};
use crate::rob::{Rob, NO_DEP};
use crate::sched::{ReadyRef, RsEntry, ThreadSched};
use mstacks_frontend::FrontendUnit;
use mstacks_mem::{Hierarchy, HitLevel};
use mstacks_model::{
    ArchReg, BranchInfo, CoreConfig, IdealFlags, MicroOp, UopClass, UopKind, WarmSink,
};

/// Cycles without a commit (on any thread) before the watchdog declares a
/// deadlock. Hoisted here so every run path shares one constant.
pub const WATCHDOG_CYCLES: u64 = 200_000;

/// Hardware-thread ceiling; per-stage scratch arrays are sized by it so
/// `step()` never allocates.
const MAX_THREADS: usize = 4;

/// Per-hardware-thread state.
struct ThreadCtx<I> {
    frontend: FrontendUnit,
    trace: I,
    rob: Rob,
    stq: StoreQueue,
    ldq_count: usize,
    ldq_cap: usize,
    rename: Vec<Option<u64>>,
    /// `(branch seq, resolve cycle)` of the in-flight mispredicted branch.
    pending_redirect: Option<(u64, u64)>,
    /// Waiting micro-ops of this thread: partition, consumer lists and the
    /// oldest-waiting-VFP index the FLOPS accounting reads.
    sched: ThreadSched,
    committed: u64,
    committed_flops: u64,
    stats: PipelineStats,
    /// Cycle the thread drained (it stops being observed from then on).
    finished_at: Option<u64>,
}

impl<I> ThreadCtx<I> {
    fn done(&self) -> bool {
        self.frontend.is_drained() && self.rob.is_empty()
    }
}

/// The unified out-of-order engine: 1–4 hardware threads over one backend.
///
/// # Example
///
/// ```
/// use mstacks_model::{AluClass, ArchReg, CoreConfig, IdealFlags, MicroOp, UopKind};
/// use mstacks_pipeline::Engine;
///
/// let mk = |base: u64| {
///     (0..800u64)
///         .map(move |i| {
///             MicroOp::new(base + (i % 16) * 4, UopKind::IntAlu(AluClass::Add))
///                 .with_dst(ArchReg::new((i % 8) as u16))
///         })
///         .collect::<Vec<_>>()
///         .into_iter()
/// };
/// let mut engine = Engine::new(
///     CoreConfig::broadwell(),
///     IdealFlags::none(),
///     vec![mk(0x1000), mk(0x9000)],
/// );
/// let mut observers = [(), ()]; // one per thread
/// let results = engine.run(&mut observers).expect("runs");
/// assert_eq!(results.len(), 2);
/// assert_eq!(results[0].committed_uops, 800);
/// ```
pub struct Engine<I> {
    cfg: CoreConfig,
    ideal: IdealFlags,
    mem: Hierarchy,
    threads: Vec<ThreadCtx<I>>,
    /// Dependence-ready waiting micro-ops across all threads, sorted by
    /// dispatch stamp (= the old unified-RS scan order). Entries whose
    /// `due` is still in the future ride along until it arrives.
    ready: Vec<ReadyRef>,
    /// Scratch for consumers woken during the issue scan; merged into
    /// `ready` after the scan (their results arrive next cycle at the
    /// earliest, so they can never issue in the cycle that woke them).
    woken: Vec<ReadyRef>,
    /// Next dispatch stamp (globally unique, never reused).
    next_stamp: u64,
    /// Waiting micro-ops across all threads (the shared-RS occupancy).
    rs_total: usize,
    ports: PortFile,
    /// Execution latency per µop class, from the core's class table.
    lat_by_class: [u64; UopClass::COUNT],
    cycle: u64,
    /// Per-thread scratch buffers for the issue views, reused each cycle.
    issued_bufs: Vec<Vec<IssuedInfo>>,
    /// Scratch span of micro-ops for the batched per-stage observer calls
    /// (`on_dispatch_uops` / `on_commit_uops`), reused each cycle.
    uop_span: Vec<MicroOp>,
    /// Stage wall-time counters (`MSTACKS_STAGE_PROF=1`); `None` keeps the
    /// untimed step path.
    prof: Option<Box<crate::prof::LocalStageProf>>,
}

impl<I> std::fmt::Debug for Engine<I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("config", &self.cfg.name)
            .field("threads", &self.threads.len())
            .field("cycle", &self.cycle)
            .field("committed", &self.committed_total())
            .finish()
    }
}

impl<I: Iterator<Item = MicroOp>> Engine<I> {
    /// Builds an engine with one hardware thread per trace. The ROB, store
    /// queue and load queue are partitioned evenly; one thread gets the
    /// whole structures (so a 1-thread engine *is* the single-core
    /// pipeline, not a half-sized one).
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty or larger than 4, or if partitioning
    /// leaves a thread without resources.
    pub fn new(cfg: CoreConfig, ideal: IdealFlags, traces: Vec<I>) -> Self {
        let mem = Hierarchy::new(&cfg.mem);
        Engine::with_memory(cfg, ideal, traces, mem)
    }

    /// Builds an engine over a caller-supplied memory hierarchy — the
    /// co-run entry point, where each core's hierarchy is linked to a
    /// shared uncore via [`Hierarchy::new_shared`]. The idealization flags
    /// are applied to `mem` here, same as [`Engine::new`] does.
    ///
    /// # Panics
    ///
    /// Panics as [`Engine::new`] does.
    pub fn with_memory(
        cfg: CoreConfig,
        ideal: IdealFlags,
        traces: Vec<I>,
        mut mem: Hierarchy,
    ) -> Self {
        debug_assert!(cfg.validate().is_ok(), "invalid core configuration");
        let n = traces.len();
        assert!(
            (1..=MAX_THREADS).contains(&n),
            "1..=4 hardware threads supported"
        );
        let rob_part = cfg.rob_size / n;
        let stq_part = (cfg.stq_size / n).max(1);
        let ldq_part = (cfg.ldq_size / n).max(1);
        assert!(rob_part > 0, "ROB partition too small");
        // The engine consumes the declarative per-class table, not raw
        // port specs: eligibility, pipelining and latencies all come from
        // the same rows a `.core` file carries.
        let classes = cfg.class_table();
        mem.set_perfect_icache(ideal.perfect_icache);
        mem.set_perfect_dcache(ideal.perfect_dcache);
        let threads: Vec<ThreadCtx<I>> = traces
            .into_iter()
            .map(|trace| ThreadCtx {
                frontend: FrontendUnit::new(&cfg, ideal.perfect_bpred),
                trace,
                rob: Rob::new(rob_part),
                stq: StoreQueue::new(stq_part),
                ldq_count: 0,
                ldq_cap: ldq_part,
                rename: vec![None; ArchReg::COUNT],
                pending_redirect: None,
                sched: ThreadSched::new(rob_part),
                committed: 0,
                committed_flops: 0,
                stats: PipelineStats::default(),
                finished_at: None,
            })
            .collect();
        Engine {
            ideal,
            mem,
            issued_bufs: (0..n)
                .map(|_| Vec::with_capacity(cfg.issue_width as usize))
                .collect(),
            uop_span: Vec::with_capacity(cfg.dispatch_width.max(cfg.commit_width) as usize),
            threads,
            ready: Vec::with_capacity(cfg.rs_size),
            woken: Vec::with_capacity(cfg.issue_width as usize),
            next_stamp: 0,
            rs_total: 0,
            ports: PortFile::new(&classes),
            lat_by_class: {
                let mut lat = [0u64; UopClass::COUNT];
                for c in mstacks_model::UOP_CLASSES {
                    lat[c.index()] = u64::from(classes.spec(c).latency);
                }
                lat
            },
            cycle: 0,
            prof: crate::prof::stage_prof_enabled().then(Box::default),
            cfg,
        }
    }

    /// Effective execution latency for `kind` under the active
    /// idealization (loads are handled by the memory hierarchy instead).
    fn exec_latency(&self, kind: &UopKind) -> u64 {
        if self.ideal.single_cycle_alu && !kind.is_mem() {
            1
        } else {
            self.lat_by_class[UopClass::of(kind).index()]
        }
    }

    /// Runs all threads to completion; `obs[t]` observes thread `t`.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Deadlock`] if no thread commits for
    /// [`WATCHDOG_CYCLES`], reporting which thread and stage stalled.
    ///
    /// # Panics
    ///
    /// Panics if `obs.len()` differs from the thread count.
    pub fn run<O: StageObserver>(
        &mut self,
        obs: &mut [O],
    ) -> Result<Vec<PipelineResult>, PipelineError> {
        self.run_impl(obs, None)
    }

    /// Runs until every thread has drained or committed `max_uops`
    /// micro-ops (whichever comes first per thread).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Deadlock`] as [`Engine::run`] does.
    ///
    /// # Panics
    ///
    /// Panics if `obs.len()` differs from the thread count.
    pub fn run_uops<O: StageObserver>(
        &mut self,
        max_uops: u64,
        obs: &mut [O],
    ) -> Result<Vec<PipelineResult>, PipelineError> {
        self.run_impl(obs, Some(max_uops))
    }

    /// Functionally fast-forwards thread `tid` through `trace`: caches,
    /// TLBs and the branch predictor observe every micro-op (so a detailed
    /// window that follows starts warm), but no cycles elapse, no
    /// statistics accumulate and no contention state (MSHRs, DRAM queue)
    /// is touched. Returns the number of micro-ops consumed.
    ///
    /// This is the fast segment of interval sampling; pair it with
    /// [`Engine::resume`] to hand the thread its next detailed window.
    ///
    /// # Panics
    ///
    /// Panics if the thread is not drained (fast-forwarding with work in
    /// flight would tear the pipeline state).
    pub fn fast_forward(&mut self, tid: usize, trace: impl Iterator<Item = MicroOp>) -> u64 {
        let mut sink = self.warmer(tid);
        let mut n = 0;
        for uop in trace {
            sink.feed(&uop);
            n += 1;
        }
        n
    }

    /// The warm sink for thread `tid`: mutable views of its frontend and
    /// the shared memory hierarchy, implementing [`WarmSink`]. A batched
    /// trace source (a pre-decoded buffer) streams its fast-forward
    /// segment into this sink straight out of its packed representation —
    /// roughly twice the throughput of [`Engine::fast_forward`], which
    /// materializes a `MicroOp` per µop.
    ///
    /// # Panics
    ///
    /// Panics if the thread is not drained (fast-forwarding with work in
    /// flight would tear the pipeline state).
    pub fn warmer(&mut self, tid: usize) -> impl WarmSink + '_ {
        assert!(
            self.threads[tid].done(),
            "fast-forward requires a drained thread"
        );
        Warmer {
            frontend: &mut self.threads[tid].frontend,
            mem: &mut self.mem,
        }
    }

    /// Hands a drained thread its next trace (the detailed window after a
    /// [`Engine::fast_forward`] segment) and marks it runnable again. All
    /// learned state — caches, TLBs, branch predictor, cycle counter,
    /// cumulative statistics — carries over.
    ///
    /// # Panics
    ///
    /// Panics if the thread is not drained.
    pub fn resume(&mut self, tid: usize, trace: I) {
        assert!(self.threads[tid].done(), "resume requires a drained thread");
        let t = &mut self.threads[tid];
        t.trace = trace;
        t.frontend.rearm();
        t.finished_at = None;
    }

    fn run_impl<O: StageObserver>(
        &mut self,
        obs: &mut [O],
        max_uops: Option<u64>,
    ) -> Result<Vec<PipelineResult>, PipelineError> {
        assert_eq!(obs.len(), self.threads.len(), "one observer per thread");
        let stopped = |t: &ThreadCtx<I>| t.done() || max_uops.is_some_and(|m| t.committed >= m);
        let mut last_progress = self.cycle;
        let mut last_total = self.committed_total();
        while !self.threads.iter().all(stopped) {
            self.step(obs);
            let total = self.committed_total();
            if total != last_total {
                last_total = total;
                last_progress = self.cycle;
            } else if self.cycle - last_progress > WATCHDOG_CYCLES {
                return Err(self.deadlock_error());
            }
        }
        Ok(self.results())
    }

    /// Builds the deadlock error, diagnosing the stalled thread and stage.
    /// Public so external lockstep drivers (the co-run driver steps several
    /// engines against a shared uncore) can report the same diagnosis when
    /// *their* watchdog fires.
    pub fn deadlock_error(&self) -> PipelineError {
        let (thread, stage) = self.diagnose_stall();
        PipelineError::Deadlock {
            cycle: self.cycle,
            committed: self.committed_total(),
            thread,
            stage,
        }
    }

    /// Heuristic post-mortem: the first not-yet-drained thread, and the
    /// stage its oldest work is stuck in.
    fn diagnose_stall(&self) -> (usize, StallStage) {
        let now = self.cycle;
        for tid in 0..self.threads.len() {
            if self.threads[tid].done() {
                continue;
            }
            if self.threads[tid].rob.is_empty() {
                // Window empty: micro-ops are stuck upstream. If the
                // frontend has one ready, dispatch never accepted it.
                let stage = if self.threads[tid].frontend.peek_ready(now).is_some() {
                    StallStage::Dispatch
                } else {
                    StallStage::Fetch
                };
                return (tid, stage);
            }
            let rob = &self.threads[tid].rob;
            let stage = if !rob.head_issued() {
                StallStage::Issue
            } else if !rob.head_is_done(now) {
                StallStage::Execute
            } else {
                StallStage::Commit
            };
            return (tid, stage);
        }
        (0, StallStage::Commit)
    }

    /// Advances the shared pipeline by one cycle.
    ///
    /// # Panics
    ///
    /// Panics if `obs.len()` differs from the thread count.
    pub fn step<O: StageObserver>(&mut self, obs: &mut [O]) {
        assert_eq!(obs.len(), self.threads.len(), "one observer per thread");
        if self.prof.is_some() {
            self.step_profiled(obs);
            return;
        }
        let now = self.cycle;
        // Resolve before commit: the cycle a mispredicted branch completes,
        // its wrong path must be squashed before the commit stage could ever
        // see a (completed) wrong-path micro-op behind the branch.
        self.do_resolve(now, obs);
        self.do_commit(now, obs);
        self.do_issue(now, obs);
        self.do_dispatch(now, obs);
        self.do_fetch(now, obs);
        // Structural end-of-cycle snapshot, published with the same
        // active-thread cadence as the stage views (before `finished_at`
        // updates). Assembled only when an observer opted in.
        if obs.iter().any(|o| o.wants_cycle_end()) {
            self.publish_cycle_end(now, obs);
        }
        for t in self.threads.iter_mut() {
            if t.finished_at.is_none() && t.done() {
                t.finished_at = Some(now + 1);
            }
        }
        self.cycle += 1;
    }

    /// [`Engine::step`] with per-stage wall-time accounting
    /// (`MSTACKS_STAGE_PROF=1`); identical stage sequence.
    fn step_profiled<O: StageObserver>(&mut self, obs: &mut [O]) {
        let now = self.cycle;
        let mut ns = [0u64; 6];
        let mut mark = std::time::Instant::now();
        let mut lap = |slot: &mut u64| {
            let t = std::time::Instant::now();
            *slot += t.duration_since(mark).as_nanos() as u64;
            mark = t;
        };
        self.do_resolve(now, obs);
        lap(&mut ns[0]);
        self.do_commit(now, obs);
        lap(&mut ns[1]);
        self.do_issue(now, obs);
        lap(&mut ns[2]);
        self.do_dispatch(now, obs);
        lap(&mut ns[3]);
        self.do_fetch(now, obs);
        lap(&mut ns[4]);
        if obs.iter().any(|o| o.wants_cycle_end()) {
            self.publish_cycle_end(now, obs);
        }
        lap(&mut ns[5]);
        let prof = self.prof.as_mut().expect("profiled step requires prof");
        for (total, d) in prof.ns.iter_mut().zip(ns) {
            *total += d;
        }
        prof.cycles += 1;
        for t in self.threads.iter_mut() {
            if t.finished_at.is_none() && t.done() {
                t.finished_at = Some(now + 1);
            }
        }
        self.cycle += 1;
    }

    fn publish_cycle_end<O: StageObserver>(&mut self, now: u64, obs: &mut [O]) {
        let mshr = self.mem.mshr_occupancy(now);
        let rs_total = self.rs_total;
        let rs_cap = self.cfg.rs_size;
        for (tid, ob) in obs.iter_mut().enumerate() {
            if !self.active(tid) || !ob.wants_cycle_end() {
                continue;
            }
            let t = &self.threads[tid];
            let view = CycleEndView {
                rob_len: t.rob.len(),
                rob_cap: t.rob.capacity(),
                rs_own: t.sched.len(),
                rs_total,
                rs_cap,
                ldq_len: t.ldq_count,
                ldq_cap: t.ldq_cap,
                stq_len: t.stq.len(),
                stq_cap: t.stq.capacity(),
                next_commit_seq: t.rob.head_seq(),
                committed: t.committed,
                mshr,
            };
            ob.on_cycle_end(now, &view);
        }
    }

    fn active(&self, tid: usize) -> bool {
        self.threads[tid].finished_at.is_none()
    }

    /// Whether SMT-interference blame applies at all (never on 1 thread:
    /// a single-thread engine must be indistinguishable from the classic
    /// single-core pipeline, including `smt_blocked` never firing).
    fn multi(&self) -> bool {
        self.threads.len() > 1
    }

    // ----- branch resolution ---------------------------------------------

    fn do_resolve<O: StageObserver>(&mut self, now: u64, obs: &mut [O]) {
        for (tid, o) in obs.iter_mut().enumerate().take(self.threads.len()) {
            let Some((seq, at)) = self.threads[tid].pending_redirect else {
                continue;
            };
            if at > now {
                continue;
            }
            let t = &mut self.threads[tid];
            let next_before = t.rob.next_seq();
            let sq = t.rob.squash_younger_than(seq);
            // The squashed entries' ROB slots are vacant now; clear any
            // consumer lists anchored there so a future occupant of the
            // slot does not wake stale entries. (The stamp check would
            // reject them anyway; clearing keeps the lists tight.)
            for s in (seq + 1)..next_before {
                let slot = t.rob.slot_of(s);
                t.sched.consumers[slot].clear();
            }
            let removed = t.sched.squash_younger_than(seq);
            self.rs_total -= removed;
            t.stq.squash_younger_than(seq);
            t.ldq_count -= sq.loads as usize;
            // Rebuild the rename table from the surviving window (nothing
            // to walk when the squash emptied it).
            t.rename.fill(None);
            if !t.rob.is_empty() {
                for (seq, fu) in t.rob.iter_fu() {
                    if let Some(d) = fu.uop.dst {
                        t.rename[d.index()] = Some(seq);
                    }
                }
            }
            t.frontend.redirect(now);
            t.stats.squashed_uops += sq.uops;
            t.stats.redirects += 1;
            t.pending_redirect = None;
            // Purge this thread's squashed entries from the ready queue
            // (retain keeps the stamp order).
            self.ready.retain(|e| e.tid as usize != tid || e.seq <= seq);
            o.on_squash(now, sq.uops, sq.branches);
        }
    }

    // ----- commit ---------------------------------------------------------

    fn do_commit<O: StageObserver>(&mut self, now: u64, obs: &mut [O]) {
        let n_threads = self.threads.len();
        let mut budget = self.cfg.commit_width;
        let mut per_thread_n = [0u32; MAX_THREADS];
        let mut head_ready_unserved = [false; MAX_THREADS];
        let mut span = std::mem::take(&mut self.uop_span);
        for k in 0..n_threads {
            let tid = (now as usize + k) % n_threads;
            if !self.active(tid) {
                continue;
            }
            loop {
                let t = &mut self.threads[tid];
                if !t.rob.head_is_done(now) {
                    break;
                }
                if budget == 0 {
                    head_ready_unserved[tid] = true;
                    break;
                }
                let seq = t.rob.head_seq();
                // One 56-byte copy of the micro-op (it doubles as the
                // batched-observer span element), replacing the old
                // 144-byte whole-entry pop.
                let fu = t.rob.head_fu().expect("done head exists");
                debug_assert!(!fu.wrong_path, "wrong-path micro-op reached commit");
                let uop = fu.uop;
                t.rob.drop_head();
                match uop.kind {
                    UopKind::Store { .. } => t.stq.retire(seq),
                    UopKind::Load { .. } => t.ldq_count -= 1,
                    _ => {}
                }
                if let Some(d) = uop.dst {
                    // Drop the rename mapping if this was still the last writer.
                    if t.rename[d.index()] == Some(seq) {
                        t.rename[d.index()] = None;
                    }
                }
                t.committed += 1;
                t.committed_flops += uop.flops();
                span.push(uop);
                per_thread_n[tid] += 1;
                budget -= 1;
            }
            // One batched observer call per thread per cycle, at the same
            // sequence point the per-µop calls occupied (after the walk,
            // before any stage view) — see the `StageObserver` docs for
            // why this is report-identical to the per-µop path.
            if !span.is_empty() {
                obs[tid].on_commit_uops(now, &span);
                span.clear();
            }
        }
        self.uop_span = span;
        let multi = self.multi();
        for (tid, ob) in obs.iter_mut().enumerate() {
            if !self.active(tid) {
                continue;
            }
            let t = &self.threads[tid];
            let view = CommitView {
                n: per_thread_n[tid],
                rob_empty: t.rob.is_empty(),
                smt_blocked: multi && head_ready_unserved[tid],
                fe_stall: t.frontend.stall_reason(now),
                head_blame: t.rob.head_blame(now),
            };
            ob.on_commit(now, &view);
        }
    }

    // ----- issue ----------------------------------------------------------

    /// Blame for the first still-outstanding producer of the waiting entry
    /// `seq` ("`i = prod(first non-ready instr)`", paper Table II issue
    /// column). A not-done producer's [`Rob::blame_of`] is exactly the old
    /// inline classification (Dcache/Interference for issued L1-missing
    /// loads, LongLat for issued multi-cycle ops, Depend otherwise).
    fn producer_blame(&self, tid: usize, seq: u64, now: u64) -> Blame {
        let rob = &self.threads[tid].rob;
        let deps = rob.deps_of(seq).expect("waiting entry is in the ROB");
        for p in deps.iter().filter(|&&p| p != NO_DEP) {
            if rob.producer_done(*p, now) {
                continue;
            }
            return rob.blame_of(*p, now).unwrap_or(Blame::Depend);
        }
        Blame::Depend
    }

    /// FLOPS blame for the oldest waiting VFP micro-op (Table III 14–18).
    /// O(1) lookup: the scheduler keeps the waiting-VFP list sorted.
    fn vfp_blame(&self, tid: usize, now: u64) -> Option<FlopsBlame> {
        let t = &self.threads[tid];
        let seq = *t.sched.vfp.first()?;
        let rob = &t.rob;
        let deps = rob.deps_of(seq)?;
        for p in deps.iter().filter(|&&p| p != NO_DEP) {
            if rob.producer_done(*p, now) {
                continue;
            }
            let Some(pfu) = rob.fu(*p) else { continue };
            return Some(if pfu.uop.kind.is_load() {
                FlopsBlame::Memory
            } else {
                FlopsBlame::Depend
            });
        }
        Some(FlopsBlame::Depend)
    }

    fn do_issue<O: StageObserver>(&mut self, now: u64, obs: &mut [O]) {
        self.ports.begin_cycle(now);
        let n_threads = self.threads.len();
        let mut issued_bufs = std::mem::take(&mut self.issued_bufs);
        for buf in issued_bufs.iter_mut() {
            buf.clear();
        }
        let mut n_total = [0u32; MAX_THREADS];
        let mut n_correct = [0u32; MAX_THREADS];
        let mut structural: [Option<StructuralStall>; MAX_THREADS] = [None; MAX_THREADS];
        let mut port_blocked = [false; MAX_THREADS];
        let mut vu_non_vfp = [false; MAX_THREADS];
        // Captured before issuing: "was a VFP micro-op waiting this cycle"
        // (Table III line 9 inspects the pre-issue RS state).
        let mut vfp_in_rs = [false; MAX_THREADS];
        let mut rs_empty = [false; MAX_THREADS];
        for tid in 0..n_threads {
            vfp_in_rs[tid] = !self.threads[tid].sched.vfp.is_empty();
            rs_empty[tid] = self.threads[tid].sched.is_empty();
        }

        let mut budget = self.cfg.issue_width;
        // Stamp of the entry that consumed the last issue slot. Entries the
        // old linear RS scan would never have reached (larger stamp) must
        // not contribute blocking blame below; `u64::MAX` = scan completed.
        let mut stop_stamp = u64::MAX;
        let mut ready = std::mem::take(&mut self.ready);
        let mut woken = std::mem::take(&mut self.woken);
        debug_assert!(woken.is_empty());
        // Single compacting pass in stamp order: issued entries drop out,
        // everything else shifts down in place.
        let mut w = 0;
        let mut r = 0;
        while r < ready.len() {
            if budget == 0 {
                break;
            }
            let cand = ready[r];
            r += 1;
            if cand.due > now {
                ready[w] = cand;
                w += 1;
                continue;
            }
            let tid = cand.tid as usize;
            let seq = cand.seq;
            let kind = cand.kind;
            // Memory disambiguation for loads.
            let mut forward = false;
            if let UopKind::Load { addr } = kind {
                match self.threads[tid].stq.check_load(seq, addr) {
                    LoadCheck::Blocked => {
                        structural[tid] =
                            structural[tid].or(Some(StructuralStall::MemDisambiguation));
                        ready[w] = cand;
                        w += 1;
                        continue;
                    }
                    LoadCheck::Forward => forward = true,
                    LoadCheck::Proceed => {}
                }
            }
            // Port allocation.
            let base_lat = self.exec_latency(&kind);
            let Some(port) = self.ports.try_issue(&kind, now, base_lat) else {
                structural[tid] = structural[tid].or(Some(StructuralStall::Ports));
                port_blocked[tid] = true;
                ready[w] = cand;
                w += 1;
                continue;
            };
            let fu = *self.threads[tid]
                .rob
                .fu(seq)
                .expect("RS entry is in the ROB");
            // Execution timing.
            let (ready_at, mem_level, interf) = match kind {
                UopKind::Load { addr } => {
                    if forward {
                        self.threads[tid].stats.store_forwards += 1;
                        (
                            now + u64::from(self.cfg.mem.l1d.latency),
                            Some(HitLevel::L1),
                            0,
                        )
                    } else {
                        let res = self.mem.load(addr, fu.uop.pc, now);
                        (res.ready, Some(res.level), res.interference)
                    }
                }
                UopKind::Store { addr } => {
                    // Address/data ready quickly; the line fill proceeds in
                    // the background through the hierarchy (write-allocate).
                    self.threads[tid].stq.mark_executed(seq);
                    let _ = self.mem.store(addr, fu.uop.pc, now);
                    (now + base_lat, None, 0)
                }
                _ => (now + base_lat, None, 0),
            };
            let t = &mut self.threads[tid];
            t.rob.mark_issued(seq, now, ready_at, mem_level, interf);
            // A mispredicted correct-path branch schedules the redirect for
            // its completion cycle.
            if fu.mispredicted_branch && !fu.wrong_path {
                debug_assert!(t.pending_redirect.is_none());
                t.pending_redirect = Some((seq, ready_at));
            }
            // Wake the consumers now that the completion time is known.
            // The (seq, stamp) pair guards against stale registrations
            // left by squashes; entries reaching zero pending producers
            // join the ready queue after the scan (their results arrive
            // strictly later than `now`, so the old linear scan could not
            // have issued them this cycle either).
            let slot = t.rob.slot_of(seq);
            let mut wakers = std::mem::take(&mut t.sched.consumers[slot]);
            for &(cseq, cstamp) in &wakers {
                if let Some((stamp, due, kind)) = t.sched.wake(cseq, cstamp, ready_at) {
                    woken.push(ReadyRef {
                        stamp,
                        due,
                        tid: cand.tid,
                        seq: cseq,
                        kind,
                    });
                }
            }
            wakers.clear();
            t.sched.consumers[slot] = wakers;
            t.sched.mark_issued(seq);
            if kind.is_vfp() {
                t.sched.remove_vfp(seq);
            }
            self.rs_total -= 1;
            let on_vpu = self.ports.is_vpu(port);
            if on_vpu && !kind.is_vfp() {
                vu_non_vfp[tid] = true;
            }
            issued_bufs[tid].push(IssuedInfo {
                uop: fu.uop,
                wrong_path: fu.wrong_path,
                on_vpu,
            });
            n_total[tid] += 1;
            if !fu.wrong_path {
                n_correct[tid] += 1;
            }
            budget -= 1;
            if budget == 0 {
                stop_stamp = cand.stamp;
            }
        }
        // Keep the unscanned tail, then merge the wakeups in stamp order.
        while r < ready.len() {
            ready[w] = ready[r];
            w += 1;
            r += 1;
        }
        ready.truncate(w);
        for wk in woken.drain(..) {
            let pos = ready.partition_point(|e| e.stamp < wk.stamp);
            ready.insert(pos, wk);
        }
        self.ready = ready;
        self.woken = woken;

        let any_issued: u32 = n_total[..n_threads].iter().sum();
        let multi = self.multi();
        for (tid, ob) in obs.iter_mut().enumerate() {
            if !self.active(tid) {
                continue;
            }
            // Port-blocked while other threads issued → SMT interference.
            let smt_blocked = multi && n_total[tid] == 0 && port_blocked[tid] && any_issued > 0;
            // A structural stall only matters if the stage had width left.
            if n_total[tid] >= self.cfg.issue_width {
                structural[tid] = None;
            }
            // Blocking blame: the oldest waiting micro-op whose dependences
            // are not done — exactly the first such entry the old linear
            // scan encountered, provided the scan reached it before the
            // budget ran out. Its producers all carry smaller stamps, so
            // their state no longer changes after the scan and evaluating
            // the blame here is equivalent to evaluating it mid-scan.
            let blocking = match self.threads[tid].sched.first_not_done(now) {
                Some((seq, stamp)) if stamp < stop_stamp => {
                    Some(self.producer_blame(tid, seq, now))
                }
                _ => None,
            };
            self.threads[tid].stats.issued_uops += u64::from(n_correct[tid]);
            self.threads[tid].stats.issued_wrong_path += u64::from(n_total[tid] - n_correct[tid]);
            // Only worth computing when a VFP micro-op is actually waiting.
            let vfp_blame = if self.threads[tid].sched.vfp.is_empty() {
                None
            } else {
                self.vfp_blame(tid, now)
            };
            let view = IssueView {
                n_total: n_total[tid],
                n_correct: n_correct[tid],
                rs_empty: rs_empty[tid],
                fe_stall: self.threads[tid].frontend.stall_reason(now),
                blocking_blame: blocking,
                structural: structural[tid],
                smt_blocked,
                issued: &issued_bufs[tid],
                vfp_in_rs: vfp_in_rs[tid],
                vfp_blame,
                vu_used_by_non_vfp: vu_non_vfp[tid],
            };
            ob.on_issue(now, &view);
        }
        self.issued_bufs = issued_bufs;
    }

    // ----- dispatch -------------------------------------------------------

    fn do_dispatch<O: StageObserver>(&mut self, now: u64, obs: &mut [O]) {
        let n_threads = self.threads.len();
        let mut budget = self.cfg.dispatch_width;
        let mut n_tot = [0u32; MAX_THREADS];
        let mut n_cor = [0u32; MAX_THREADS];
        let mut backend = [false; MAX_THREADS];
        let mut starved_by_smt = [false; MAX_THREADS];
        let mut supply_limited = [false; MAX_THREADS];
        let rs_cap = self.cfg.rs_size;
        let mut span = std::mem::take(&mut self.uop_span);

        for k in 0..n_threads {
            let tid = (now as usize + k) % n_threads;
            if !self.active(tid) {
                continue;
            }
            loop {
                let rs_len = self.rs_total;
                let t = &mut self.threads[tid];
                let Some(f) = t.frontend.peek_ready(now) else {
                    supply_limited[tid] = true;
                    break;
                };
                if budget == 0 {
                    starved_by_smt[tid] = true;
                    break;
                }
                let kind = f.uop.kind;
                if t.rob.is_full() || rs_len >= rs_cap {
                    backend[tid] = true;
                    break;
                }
                if matches!(kind, UopKind::Store { .. }) && t.stq.is_full() {
                    backend[tid] = true;
                    break;
                }
                if matches!(kind, UopKind::Load { .. }) && t.ldq_count >= t.ldq_cap {
                    backend[tid] = true;
                    break;
                }
                let f = t.frontend.pop_ready(now).expect("peeked entry");
                let seq = t.rob.next_seq();
                let mut deps = [NO_DEP; 3];
                for (slot, r) in f.uop.srcs().enumerate() {
                    if let Some(p) = t.rename[r.index()] {
                        deps[slot] = p;
                    }
                }
                match kind {
                    UopKind::Store { addr } => t.stq.push(seq, addr),
                    UopKind::Load { .. } => t.ldq_count += 1,
                    _ => {}
                }
                if let Some(d) = f.uop.dst {
                    t.rename[d.index()] = Some(seq);
                }
                t.rob.push(f, seq, deps);
                // Scheduler registration: count the producers that still
                // have to issue (per dependence slot — a duplicated source
                // is woken per slot) and subscribe to their wakeups; fold
                // already-issued producers into the readiness time.
                let stamp = self.next_stamp;
                self.next_stamp += 1;
                let mut pending = 0u8;
                let mut ready_time = 0u64;
                for p in deps.iter().filter(|&&p| p != NO_DEP) {
                    match t.rob.issued(*p) {
                        Some(false) => {
                            pending += 1;
                            let slot = t.rob.slot_of(*p);
                            t.sched.consumers[slot].push((seq, stamp));
                        }
                        Some(true) => {
                            let pr = t.rob.ready_at(*p).expect("issued producer in flight");
                            ready_time = ready_time.max(pr);
                        }
                        None => {} // committed → result long available
                    }
                }
                t.sched.push(RsEntry {
                    seq,
                    stamp,
                    pending,
                    ready_time,
                    kind,
                });
                if kind.is_vfp() {
                    t.sched.vfp.push(seq);
                }
                self.rs_total += 1;
                if pending == 0 {
                    // Dispatch stamps increase monotonically, so pushing
                    // keeps the ready queue stamp-sorted.
                    self.ready.push(ReadyRef {
                        stamp,
                        due: ready_time,
                        tid: tid as u32,
                        seq,
                        kind,
                    });
                }
                span.push(f.uop);
                n_tot[tid] += 1;
                if !f.wrong_path {
                    n_cor[tid] += 1;
                }
                budget -= 1;
            }
            // One batched observer call per thread per cycle, at the same
            // sequence point the per-µop calls occupied (after the walk,
            // before any stage view).
            if !span.is_empty() {
                obs[tid].on_dispatch_uops(now, &span);
                span.clear();
            }
        }
        self.uop_span = span;

        let multi = self.multi();
        for (tid, ob) in obs.iter_mut().enumerate() {
            if !self.active(tid) {
                continue;
            }
            if multi && backend[tid] {
                // Structure full: distinguish own-occupancy (partitioned
                // ROB) from shared-RS pressure by the other thread.
                let own_rs = self.threads[tid].sched.len();
                let t = &self.threads[tid];
                if !t.rob.is_full() && self.rs_total >= rs_cap && own_rs < rs_cap / 2 {
                    // The shared RS is full mostly with other threads' work.
                    backend[tid] = false;
                    starved_by_smt[tid] = true;
                }
            }
            let t = &self.threads[tid];
            // A thread whose frontend ran dry without any stall cause on a
            // multi-thread core is starved by the *shared fetch bandwidth*:
            // blame the co-runner (Eyerman & Eeckhout's shared-frontend
            // interference), not "other".
            let fe_stall = t.frontend.stall_reason(now);
            if multi
                && supply_limited[tid]
                && fe_stall.is_none()
                && !t.frontend.is_drained()
                && n_tot[tid] < self.cfg.dispatch_width
                && !backend[tid]
            {
                starved_by_smt[tid] = true;
            }
            if backend[tid] {
                self.threads[tid].stats.dispatch_backend_blocked_cycles += 1;
            }
            let t = &self.threads[tid];
            let view = DispatchView {
                n_total: n_tot[tid],
                n_correct: n_cor[tid],
                backend_blocked: backend[tid],
                smt_blocked: multi && starved_by_smt[tid],
                head_blame: if multi || backend[tid] {
                    t.rob.head_blame(now)
                } else {
                    None
                },
                fe_stall,
            };
            ob.on_dispatch(now, &view);
        }
    }

    // ----- fetch ----------------------------------------------------------

    fn do_fetch<O: StageObserver>(&mut self, now: u64, obs: &mut [O]) {
        // Fetch bandwidth alternates between threads (round-robin SMT
        // fetch); the off-turn thread reports an SMT-blocked fetch cycle.
        // With one thread it is always that thread's turn.
        let n_threads = self.threads.len();
        let turn = (now as usize) % n_threads;
        for (tid, ob) in obs.iter_mut().enumerate() {
            if !self.active(tid) {
                continue;
            }
            if tid == turn {
                let t = &mut self.threads[tid];
                let fc = t.frontend.tick(now, &mut self.mem, &mut t.trace);
                let view = FetchView {
                    n_total: fc.n_total,
                    n_correct: fc.n_correct,
                    fe_stall: t.frontend.stall_reason(now),
                    backpressure: fc.backpressure,
                    head_blame: if fc.backpressure {
                        t.rob.head_blame(now)
                    } else {
                        None
                    },
                };
                ob.on_fetch(now, &view);
            } else {
                // No fetch slot this cycle: an SMT-shared-frontend stall.
                let t = &self.threads[tid];
                let view = FetchView {
                    n_total: 0,
                    n_correct: 0,
                    fe_stall: t.frontend.stall_reason(now),
                    backpressure: false,
                    head_blame: None,
                };
                ob.on_fetch(now, &view);
            }
        }
    }
}

// Accessors and result snapshots need no trace bound (the `Debug` impls of
// the `Core`/`SmtCore` shims call them for any `I`).
impl<I> Engine<I> {
    /// Per-thread result snapshots (cycles = the thread's drain time, or
    /// the current cycle for threads still running).
    pub fn results(&self) -> Vec<PipelineResult> {
        (0..self.threads.len()).map(|t| self.result_of(t)).collect()
    }

    /// Result snapshot for one hardware thread.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn result_of(&self, tid: usize) -> PipelineResult {
        let t = &self.threads[tid];
        PipelineResult {
            cycles: t.finished_at.unwrap_or(self.cycle),
            committed_uops: t.committed,
            committed_flops: t.committed_flops,
            stats: t.stats,
            frontend: *t.frontend.stats(),
            mem: self.mem.stats_snapshot(),
        }
    }

    /// Number of hardware threads.
    pub fn n_threads(&self) -> usize {
        self.threads.len()
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Committed correct-path micro-ops of thread `tid` so far.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn committed(&self, tid: usize) -> u64 {
        self.threads[tid].committed
    }

    /// Whether thread `tid` has drained (frontend exhausted and window
    /// empty). External lockstep drivers use this as their stop predicate.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn thread_done(&self, tid: usize) -> bool {
        self.threads[tid].done()
    }

    /// Committed correct-path micro-ops summed over all threads.
    pub fn committed_total(&self) -> u64 {
        self.threads.iter().map(|t| t.committed).sum()
    }

    /// The core configuration this engine simulates.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// The idealization flags in effect.
    pub fn ideal(&self) -> IdealFlags {
        self.ideal
    }
}

/// The engine's [`WarmSink`]: routes each fast-forwarded access to the
/// corresponding functional-warming path — I-side (line-deduplicated) and
/// branch training through the thread's frontend, D-side through the
/// shared hierarchy. Both [`Engine::fast_forward`] (iterator) and any
/// batched source driving [`Engine::warmer`] directly funnel through it,
/// so the two paths warm identically by construction.
struct Warmer<'a> {
    frontend: &'a mut FrontendUnit,
    mem: &'a mut Hierarchy,
}

impl WarmSink for Warmer<'_> {
    #[inline]
    fn inst(&mut self, pc: u64) {
        self.frontend.warm_inst(pc, self.mem);
    }

    #[inline]
    fn branch(&mut self, pc: u64, info: &BranchInfo) {
        self.frontend.warm_branch(pc, info);
    }

    #[inline]
    fn load(&mut self, addr: u64, pc: u64) {
        self.mem.warm_load(addr, pc);
    }

    #[inline]
    fn store(&mut self, addr: u64, pc: u64) {
        self.mem.warm_store(addr, pc);
    }
}
