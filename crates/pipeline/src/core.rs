//! The single-hardware-thread out-of-order core.
//!
//! [`Core`] is a thin convenience wrapper over the unified
//! [`Engine`](crate::Engine) instantiated with exactly one hardware
//! thread: single-observer signatures, scalar accessors, a
//! [`PipelineResult`] instead of a one-element vector. The per-stage
//! logic — commit, branch resolution, issue, dispatch, fetch — lives
//! entirely in [`crate::engine`]; a 1-thread engine is cycle-for-cycle
//! identical to the historical standalone single-core pipeline.

use crate::engine::Engine;
use crate::observer::StageObserver;
use crate::result::{PipelineError, PipelineResult};
use mstacks_model::{CoreConfig, IdealFlags, MicroOp};

/// A simulated out-of-order core bound to one trace.
pub struct Core<I> {
    engine: Engine<I>,
}

impl<I> std::fmt::Debug for Core<I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("config", &self.engine.config().name)
            .field("cycle", &self.engine.cycle())
            .field("committed", &self.engine.committed(0))
            .finish()
    }
}

impl<I: Iterator<Item = MicroOp>> Core<I> {
    /// Builds a core with configuration `cfg`, idealization `ideal`,
    /// consuming `trace`.
    pub fn new(cfg: CoreConfig, ideal: IdealFlags, trace: I) -> Self {
        Core {
            engine: Engine::new(cfg, ideal, vec![trace]),
        }
    }

    /// Runs the whole trace to completion.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Deadlock`] if the pipeline stops making
    /// progress (a model invariant violation, not an expected outcome).
    pub fn run<O: StageObserver>(&mut self, obs: &mut O) -> Result<PipelineResult, PipelineError> {
        self.engine
            .run(std::slice::from_mut(obs))
            .map(|mut v| v.remove(0))
    }

    /// Runs at most `max_uops` committed micro-ops (or to trace end).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Deadlock`] as [`Core::run`] does.
    pub fn run_uops<O: StageObserver>(
        &mut self,
        max_uops: u64,
        obs: &mut O,
    ) -> Result<PipelineResult, PipelineError> {
        self.engine
            .run_uops(max_uops, std::slice::from_mut(obs))
            .map(|mut v| v.remove(0))
    }

    /// Snapshot of the result so far.
    pub fn result(&self) -> PipelineResult {
        self.engine.result_of(0)
    }

    /// Advances the pipeline by one cycle.
    pub fn step<O: StageObserver>(&mut self, obs: &mut O) {
        self.engine.step(std::slice::from_mut(obs));
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.engine.cycle()
    }

    /// Committed correct-path micro-ops so far.
    pub fn committed(&self) -> u64 {
        self.engine.committed(0)
    }

    /// The core configuration this core simulates.
    pub fn config(&self) -> &CoreConfig {
        self.engine.config()
    }

    /// The idealization flags in effect.
    pub fn ideal(&self) -> IdealFlags {
        self.engine.ideal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::{CommitView, DispatchView, IssueView};
    use mstacks_model::{AluClass, ArchReg, BranchInfo, BranchKind, ElemType, UopKind, VecFpOp};

    fn bdw() -> CoreConfig {
        CoreConfig::broadwell()
    }

    fn alu_trace(n: u64) -> impl Iterator<Item = MicroOp> {
        (0..n).map(|i| {
            MicroOp::new(0x1000 + (i % 16) * 4, UopKind::IntAlu(AluClass::Add))
                .with_dst(ArchReg::new((i % 8) as u16))
        })
    }

    #[test]
    fn independent_alus_reach_full_width() {
        // Ideal conditions: tiny loop, perfect caches, no branches.
        let ideal = IdealFlags::none()
            .with_perfect_icache()
            .with_perfect_bpred();
        let mut core = Core::new(bdw(), ideal, alu_trace(40_000));
        let r = core.run(&mut ()).expect("runs");
        assert_eq!(r.committed_uops, 40_000);
        let cpi = r.cpi();
        // 4-wide, 4 ALU ports, no deps → CPI close to 0.25.
        assert!(cpi < 0.30, "CPI {cpi} should approach 0.25");
        assert!(cpi >= 0.25, "CPI {cpi} cannot beat the width");
    }

    #[test]
    fn dependence_chain_serializes() {
        // Every op depends on the previous one → CPI ≈ 1.
        let trace = (0..10_000u64).map(|i| {
            MicroOp::new(0x1000 + (i % 16) * 4, UopKind::IntAlu(AluClass::Add))
                .with_src(ArchReg::new(1))
                .with_dst(ArchReg::new(1))
        });
        let ideal = IdealFlags::none()
            .with_perfect_icache()
            .with_perfect_bpred();
        let mut core = Core::new(bdw(), ideal, trace);
        let r = core.run(&mut ()).expect("runs");
        let cpi = r.cpi();
        assert!(cpi > 0.95, "chained adds must serialize, CPI {cpi}");
        assert!(cpi < 1.2, "chained adds are 1 IPC, CPI {cpi}");
    }

    #[test]
    fn multiplier_latency_shows_in_chain() {
        let trace = (0..5_000u64).map(|i| {
            MicroOp::new(0x1000 + (i % 16) * 4, UopKind::IntAlu(AluClass::Mul))
                .with_src(ArchReg::new(1))
                .with_dst(ArchReg::new(1))
        });
        let ideal = IdealFlags::none()
            .with_perfect_icache()
            .with_perfect_bpred();
        let mut core = Core::new(bdw(), ideal, trace);
        let r = core.run(&mut ()).expect("runs");
        let cpi = r.cpi();
        // BDW imul latency 3 → chained CPI ≈ 3.
        assert!(cpi > 2.8 && cpi < 3.4, "chained muls CPI {cpi} ≈ 3");
    }

    #[test]
    fn single_cycle_alu_idealization_flattens_mul_chain() {
        let trace = (0..5_000u64).map(|i| {
            MicroOp::new(0x1000 + (i % 16) * 4, UopKind::IntAlu(AluClass::Mul))
                .with_src(ArchReg::new(1))
                .with_dst(ArchReg::new(1))
        });
        let ideal = IdealFlags::none()
            .with_perfect_icache()
            .with_perfect_bpred()
            .with_single_cycle_alu();
        let mut core = Core::new(bdw(), ideal, trace);
        let r = core.run(&mut ()).expect("runs");
        let cpi = r.cpi();
        assert!(cpi < 1.2, "1-cycle ALU makes the chain CPI ≈ 1, got {cpi}");
    }

    #[test]
    fn load_misses_stall_the_pipeline() {
        // Independent loads striding far beyond every cache.
        let trace = (0..3_000u64).map(|i| {
            MicroOp::new(0x1000 + (i % 8) * 4, UopKind::Load { addr: i * 8192 })
                .with_dst(ArchReg::new((i % 8) as u16))
        });
        let ideal = IdealFlags::none()
            .with_perfect_icache()
            .with_perfect_bpred();
        let mut core = Core::new(bdw(), ideal, trace);
        let r = core.run(&mut ()).expect("runs");
        assert!(
            r.cpi() > 1.0,
            "memory-bound loads must stall, CPI {}",
            r.cpi()
        );
        assert!(r.mem.l1d.misses > 2_000);
        // Same trace with a perfect D-cache flows at near-ideal CPI.
        let trace2 = (0..3_000u64).map(|i| {
            MicroOp::new(0x1000 + (i % 8) * 4, UopKind::Load { addr: i * 8192 })
                .with_dst(ArchReg::new((i % 8) as u16))
        });
        let mut core2 = Core::new(bdw(), ideal.with_perfect_dcache(), trace2);
        let r2 = core2.run(&mut ()).expect("runs");
        assert!(r2.cpi() < r.cpi() * 0.5, "perfect D$ must help a lot");
    }

    #[test]
    fn mispredicted_branches_cost_cycles_and_squash() {
        // Branches with irregular outcomes; perfect variant for contrast.
        // Hash-derived outcomes are unlearnable for gshare.
        let mk_real = || {
            (0..4_000u64).map(|i| {
                let taken = (i.wrapping_mul(0x9E3779B97F4A7C15) >> 33) & 1 == 0;
                let pc = 0x1000 + (i % 32) * 8;
                MicroOp::new(
                    pc,
                    UopKind::Branch(BranchInfo {
                        taken,
                        target: pc + 64,
                        fallthrough: pc + 8,
                        kind: BranchKind::Cond,
                    }),
                )
            })
        };
        let ideal = IdealFlags::none().with_perfect_icache();
        let mut core = Core::new(bdw(), ideal, mk_real());
        let r = core.run(&mut ()).expect("runs");
        assert!(
            r.stats.redirects > 100,
            "irregular branches must mispredict"
        );
        assert!(r.stats.squashed_uops > 0);
        let mut core2 = Core::new(bdw(), ideal.with_perfect_bpred(), mk_real());
        let r2 = core2.run(&mut ()).expect("runs");
        assert_eq!(r2.stats.redirects, 0);
        assert!(r2.cycles < r.cycles, "perfect bpred must be faster");
    }

    #[test]
    fn store_load_forwarding_works() {
        // store to X; load from X immediately after: must forward, not miss.
        let mut uops = Vec::new();
        for i in 0..2_000u64 {
            let addr = 0x100000 + (i % 4) * 8;
            uops.push(
                MicroOp::new(0x1000 + (i % 8) * 8, UopKind::Store { addr })
                    .with_src(ArchReg::new(1)),
            );
            uops.push(
                MicroOp::new(0x1004 + (i % 8) * 8, UopKind::Load { addr })
                    .with_dst(ArchReg::new(2)),
            );
        }
        let ideal = IdealFlags::none()
            .with_perfect_icache()
            .with_perfect_bpred();
        let mut core = Core::new(bdw(), ideal, uops.into_iter());
        let r = core.run(&mut ()).expect("runs");
        assert!(r.stats.store_forwards > 1_000, "loads should forward");
    }

    #[test]
    fn vfp_ops_count_flops() {
        let trace = (0..1_000u64).map(|i| {
            MicroOp::new(
                0x1000 + (i % 8) * 4,
                UopKind::VecFp(VecFpOp::fma(8, ElemType::F32)),
            )
            .with_dst(ArchReg::new((i % 8) as u16))
        });
        let ideal = IdealFlags::none()
            .with_perfect_icache()
            .with_perfect_bpred();
        let mut core = Core::new(bdw(), ideal, trace);
        let r = core.run(&mut ()).expect("runs");
        assert_eq!(r.committed_flops, 1_000 * 16); // 8 lanes × 2 (FMA)
    }

    #[test]
    fn knl_is_narrower_than_bdw() {
        let ideal = IdealFlags::none()
            .with_perfect_icache()
            .with_perfect_bpred();
        let mut bdw_core = Core::new(bdw(), ideal, alu_trace(20_000));
        let rb = bdw_core.run(&mut ()).expect("runs");
        let mut knl_core = Core::new(CoreConfig::knights_landing(), ideal, alu_trace(20_000));
        let rk = knl_core.run(&mut ()).expect("runs");
        assert!(rk.cpi() > rb.cpi() * 1.5, "2-wide KNL must be slower");
        assert!(rk.cpi() >= 0.5, "KNL CPI floor is 1/2");
    }

    #[test]
    fn observer_sees_all_stages() {
        #[derive(Default)]
        struct Probe {
            d: u64,
            i: u64,
            c: u64,
            committed: u64,
        }
        impl StageObserver for Probe {
            fn on_dispatch(&mut self, _c: u64, _v: &DispatchView) {
                self.d += 1;
            }
            fn on_issue(&mut self, _c: u64, _v: &IssueView<'_>) {
                self.i += 1;
            }
            fn on_commit(&mut self, _c: u64, _v: &CommitView) {
                self.c += 1;
            }
            fn on_commit_uop(&mut self, _c: u64, _u: &MicroOp) {
                self.committed += 1;
            }
        }
        let mut probe = Probe::default();
        let ideal = IdealFlags::none()
            .with_perfect_icache()
            .with_perfect_bpred();
        let mut core = Core::new(bdw(), ideal, alu_trace(1_000));
        let r = core.run(&mut probe).expect("runs");
        assert_eq!(probe.d, r.cycles);
        assert_eq!(probe.i, r.cycles);
        assert_eq!(probe.c, r.cycles);
        assert_eq!(probe.committed, 1_000);
    }

    #[test]
    fn determinism() {
        let mk = || {
            (0..5_000u64).map(|i| {
                let pc = 0x1000 + (i % 64) * 4;
                if i % 7 == 0 {
                    MicroOp::new(
                        pc,
                        UopKind::Load {
                            addr: (i * 2654435761) % 262144,
                        },
                    )
                    .with_dst(ArchReg::new(3))
                } else {
                    MicroOp::new(pc, UopKind::IntAlu(AluClass::Add))
                        .with_src(ArchReg::new(3))
                        .with_dst(ArchReg::new((i % 8) as u16))
                }
            })
        };
        let run = || {
            let mut c = Core::new(bdw(), IdealFlags::none(), mk());
            c.run(&mut ()).expect("runs")
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "identical traces must give identical results");
    }

    #[test]
    fn run_uops_stops_early() {
        let ideal = IdealFlags::none()
            .with_perfect_icache()
            .with_perfect_bpred();
        let mut core = Core::new(bdw(), ideal, alu_trace(100_000));
        let r = core.run_uops(5_000, &mut ()).expect("runs");
        assert!(r.committed_uops >= 5_000);
        assert!(r.committed_uops < 5_010, "stops shortly after the target");
    }

    /// The engine must hand µop streams to observers through the batched
    /// span hooks, never the per-µop ones: the per-µop hooks exist only
    /// as the default-impl fallback *inside* `on_dispatch_uops`/
    /// `on_commit_uops`. An observer that overrides both forms would see
    /// the per-µop hook only if the engine bypassed the batched entry
    /// point — which this probe turns into a test failure. CI's
    /// perf-smoke job runs this to pin the hot accounting path.
    #[test]
    fn batched_observer_path_is_exercised() {
        #[derive(Default)]
        struct BatchProbe {
            dispatch_spans: u64,
            commit_spans: u64,
            dispatched: u64,
            committed: u64,
        }
        impl StageObserver for BatchProbe {
            fn on_dispatch_uop(&mut self, _c: u64, _u: &MicroOp) {
                panic!("engine used the per-µop dispatch hook instead of the batched span");
            }
            fn on_commit_uop(&mut self, _c: u64, _u: &MicroOp) {
                panic!("engine used the per-µop commit hook instead of the batched span");
            }
            fn on_dispatch_uops(&mut self, _c: u64, uops: &[MicroOp]) {
                assert!(!uops.is_empty(), "batched spans are only sent non-empty");
                self.dispatch_spans += 1;
                self.dispatched += uops.len() as u64;
            }
            fn on_commit_uops(&mut self, _c: u64, uops: &[MicroOp]) {
                assert!(!uops.is_empty(), "batched spans are only sent non-empty");
                self.commit_spans += 1;
                self.committed += uops.len() as u64;
            }
        }
        let mut probe = BatchProbe::default();
        let mut core = Core::new(bdw(), IdealFlags::none(), alu_trace(10_000));
        let r = core.run(&mut probe).expect("runs");
        assert!(probe.dispatch_spans > 0, "no batched dispatch span seen");
        assert!(probe.commit_spans > 0, "no batched commit span seen");
        assert_eq!(probe.committed, r.committed_uops);
        assert!(probe.dispatched >= probe.committed);
    }
}
