//! The out-of-order core: per-cycle orchestration of commit, branch
//! resolution, issue, dispatch and fetch.
//!
//! Stages run back-to-front each cycle so that same-cycle structural state
//! is consistent: a micro-op dispatched in cycle *t* can issue in *t + 1*
//! at the earliest, and commits happen before the cycle's new completions
//! are visible.

use crate::exec::PortFile;
use crate::lsq::{LoadCheck, StoreQueue};
use crate::observer::{
    Blame, CommitView, DispatchView, FetchView, FlopsBlame, IssueView, IssuedInfo,
    StageObserver, StructuralStall,
};
use crate::result::{PipelineError, PipelineResult, PipelineStats};
use crate::rob::{Rob, RobEntry};
use mstacks_frontend::FrontendUnit;
use mstacks_mem::{Hierarchy, HitLevel};
use mstacks_model::{ArchReg, CoreConfig, IdealFlags, MicroOp, UopKind};

/// Cycles without a commit before the watchdog declares a deadlock.
const WATCHDOG_CYCLES: u64 = 200_000;

/// A simulated out-of-order core bound to one trace.
pub struct Core<I> {
    cfg: CoreConfig,
    ideal: IdealFlags,
    mem: Hierarchy,
    frontend: FrontendUnit,
    trace: I,
    rob: Rob,
    /// Reservation stations: sequence numbers of dispatched, not-yet-issued
    /// micro-ops, in program order.
    rs: Vec<u64>,
    stq: StoreQueue,
    ldq_count: usize,
    rename: Vec<Option<u64>>,
    ports: PortFile,
    cycle: u64,
    /// `(branch seq, resolve cycle)` of the in-flight mispredicted branch.
    pending_redirect: Option<(u64, u64)>,
    stats: PipelineStats,
    committed: u64,
    committed_flops: u64,
    issued_buf: Vec<IssuedInfo>,
    /// Vector-FP micro-ops currently waiting in the RS (incremental count,
    /// so the per-cycle FLOPS view is O(1) for non-FP code).
    vfp_waiting: usize,
}

impl<I> std::fmt::Debug for Core<I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("config", &self.cfg.name)
            .field("cycle", &self.cycle)
            .field("committed", &self.committed)
            .field("rob_len", &self.rob.len())
            .finish()
    }
}

impl<I: Iterator<Item = MicroOp>> Core<I> {
    /// Builds a core with configuration `cfg`, idealization `ideal`,
    /// consuming `trace`.
    pub fn new(cfg: CoreConfig, ideal: IdealFlags, trace: I) -> Self {
        debug_assert!(cfg.validate().is_ok(), "invalid core configuration");
        let mut mem = Hierarchy::new(&cfg.mem);
        mem.set_perfect_icache(ideal.perfect_icache);
        mem.set_perfect_dcache(ideal.perfect_dcache);
        let frontend = FrontendUnit::new(&cfg, ideal.perfect_bpred);
        let ports = PortFile::new(&cfg.ports);
        let rob = Rob::new(cfg.rob_size);
        let stq = StoreQueue::new(cfg.stq_size);
        Core {
            ideal,
            mem,
            frontend,
            trace,
            rob,
            rs: Vec::with_capacity(cfg.rs_size),
            stq,
            ldq_count: 0,
            rename: vec![None; ArchReg::COUNT],
            ports,
            cycle: 0,
            pending_redirect: None,
            stats: PipelineStats::default(),
            committed: 0,
            committed_flops: 0,
            issued_buf: Vec::with_capacity(cfg.issue_width as usize),
            vfp_waiting: 0,
            cfg,
        }
    }

    /// Effective execution latency for `kind` under the active
    /// idealization (loads are handled by the memory hierarchy instead).
    fn exec_latency(&self, kind: &UopKind) -> u64 {
        if self.ideal.single_cycle_alu && !kind.is_mem() {
            1
        } else {
            u64::from(self.cfg.lat.exec_latency(kind))
        }
    }

    /// Runs the whole trace to completion.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Deadlock`] if the pipeline stops making
    /// progress (a model invariant violation, not an expected outcome).
    pub fn run<O: StageObserver>(&mut self, obs: &mut O) -> Result<PipelineResult, PipelineError> {
        let mut last_progress_cycle = 0u64;
        let mut last_committed = 0u64;
        while !(self.frontend.is_drained() && self.rob.is_empty()) {
            self.step(obs);
            if self.committed != last_committed {
                last_committed = self.committed;
                last_progress_cycle = self.cycle;
            } else if self.cycle - last_progress_cycle > WATCHDOG_CYCLES {
                return Err(PipelineError::Deadlock {
                    cycle: self.cycle,
                    committed: self.committed,
                });
            }
        }
        Ok(self.result())
    }

    /// Runs at most `max_uops` committed micro-ops (or to trace end).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Deadlock`] as [`Core::run`] does.
    pub fn run_uops<O: StageObserver>(
        &mut self,
        max_uops: u64,
        obs: &mut O,
    ) -> Result<PipelineResult, PipelineError> {
        let mut last_progress_cycle = 0u64;
        let mut last_committed = 0u64;
        while !(self.frontend.is_drained() && self.rob.is_empty()) && self.committed < max_uops {
            self.step(obs);
            if self.committed != last_committed {
                last_committed = self.committed;
                last_progress_cycle = self.cycle;
            } else if self.cycle - last_progress_cycle > WATCHDOG_CYCLES {
                return Err(PipelineError::Deadlock {
                    cycle: self.cycle,
                    committed: self.committed,
                });
            }
        }
        Ok(self.result())
    }

    /// Snapshot of the result so far.
    pub fn result(&self) -> PipelineResult {
        PipelineResult {
            cycles: self.cycle,
            committed_uops: self.committed,
            committed_flops: self.committed_flops,
            stats: self.stats,
            frontend: *self.frontend.stats(),
            mem: self.mem.stats_snapshot(),
        }
    }

    /// Advances the pipeline by one cycle.
    pub fn step<O: StageObserver>(&mut self, obs: &mut O) {
        let now = self.cycle;
        // Resolve before commit: the cycle a mispredicted branch completes,
        // its wrong path must be squashed before the commit stage could ever
        // see a (completed) wrong-path micro-op behind the branch.
        self.do_resolve(now, obs);
        self.do_commit(now, obs);
        self.do_issue(now, obs);
        self.do_dispatch(now, obs);
        let fc = self.frontend.tick(now, &mut self.mem, &mut self.trace);
        let head_blame = if fc.backpressure {
            self.rob.head().and_then(|h| h.blame(now))
        } else {
            None
        };
        obs.on_fetch(
            now,
            &FetchView {
                n_total: fc.n_total,
                n_correct: fc.n_correct,
                fe_stall: self.frontend.stall_reason(now),
                backpressure: fc.backpressure,
                head_blame,
            },
        );
        self.cycle += 1;
    }

    // ----- commit ---------------------------------------------------------

    fn do_commit<O: StageObserver>(&mut self, now: u64, obs: &mut O) {
        let mut n = 0u32;
        while n < self.cfg.commit_width {
            let Some(head) = self.rob.head() else { break };
            if !head.is_done(now) {
                break;
            }
            let e = self.rob.pop_head().expect("head exists");
            debug_assert!(!e.fu.wrong_path, "wrong-path micro-op reached commit");
            match e.fu.uop.kind {
                UopKind::Store { .. } => self.stq.retire(e.seq),
                UopKind::Load { .. } => self.ldq_count -= 1,
                _ => {}
            }
            if let Some(d) = e.fu.uop.dst {
                // Drop the rename mapping if this was still the last writer.
                if self.rename[d.index()] == Some(e.seq) {
                    self.rename[d.index()] = None;
                }
            }
            self.committed += 1;
            self.committed_flops += e.fu.uop.flops();
            obs.on_commit_uop(now, &e.fu.uop);
            n += 1;
        }
        let head_blame = self.rob.head().and_then(|h| h.blame(now));
        let view = CommitView {
            n,
            rob_empty: self.rob.is_empty(),
            smt_blocked: false,
            fe_stall: self.frontend.stall_reason(now),
            head_blame,
        };
        obs.on_commit(now, &view);
    }

    // ----- branch resolution ---------------------------------------------

    fn do_resolve<O: StageObserver>(&mut self, now: u64, obs: &mut O) {
        let Some((seq, at)) = self.pending_redirect else {
            return;
        };
        if at > now {
            return;
        }
        let (squashed, squashed_branches) = self.rob.squash_younger_than(seq);
        self.rs.retain(|&s| s <= seq);
        self.vfp_waiting = self
            .rs
            .iter()
            .filter(|&&s| self.rob.get(s).is_some_and(|e| e.fu.uop.kind.is_vfp()))
            .count();
        self.stq.squash_younger_than(seq);
        self.ldq_count = self
            .rob
            .iter()
            .filter(|e| e.fu.uop.kind.is_load())
            .count();
        // Rebuild the rename table from the surviving window.
        self.rename.fill(None);
        let mut fresh = vec![None; ArchReg::COUNT];
        for e in self.rob.iter() {
            if let Some(d) = e.fu.uop.dst {
                fresh[d.index()] = Some(e.seq);
            }
        }
        self.rename = fresh;
        self.frontend.redirect(now);
        self.stats.squashed_uops += squashed;
        self.stats.redirects += 1;
        self.pending_redirect = None;
        obs.on_squash(now, squashed, squashed_branches);
    }

    // ----- issue ----------------------------------------------------------

    /// Blame for the first still-outstanding producer of `e`
    /// ("`i = prod(first non-ready instr)`", paper Table II issue column).
    fn producer_blame(&self, e: &RobEntry, now: u64) -> Blame {
        for p in e.deps.iter().flatten() {
            if self.rob.producer_done(*p, now) {
                continue;
            }
            let Some(pe) = self.rob.get(*p) else { continue };
            if pe.issued {
                if pe.mem_level.is_some_and(|l| l.beyond_l1()) {
                    return Blame::Dcache(pe.mem_level.unwrap_or(HitLevel::Mem));
                }
                if pe.exec_lat > 1 {
                    return Blame::LongLat;
                }
            }
            return Blame::Depend;
        }
        Blame::Depend
    }

    /// FLOPS blame for the oldest waiting VFP micro-op (Table III 14–18).
    fn vfp_blame(&self, now: u64) -> Option<FlopsBlame> {
        let seq = self
            .rs
            .iter()
            .copied()
            .find(|&s| self.rob.get(s).is_some_and(|e| e.fu.uop.kind.is_vfp()))?;
        let e = self.rob.get(seq)?;
        for p in e.deps.iter().flatten() {
            if self.rob.producer_done(*p, now) {
                continue;
            }
            let Some(pe) = self.rob.get(*p) else { continue };
            return Some(if pe.fu.uop.kind.is_load() {
                FlopsBlame::Memory
            } else {
                FlopsBlame::Depend
            });
        }
        Some(FlopsBlame::Depend)
    }

    fn do_issue<O: StageObserver>(&mut self, now: u64, obs: &mut O) {
        self.ports.begin_cycle(now);
        let mut issued_buf = std::mem::take(&mut self.issued_buf);
        issued_buf.clear();

        let rs_empty = self.rs.is_empty();
        let mut n_total = 0u32;
        let mut n_correct = 0u32;
        let mut structural: Option<StructuralStall> = None;
        let mut vu_used_by_non_vfp = false;
        let mut blocking_blame: Option<Blame> = None;
        let vfp_in_rs = self.vfp_waiting > 0;

        let mut i = 0;
        while i < self.rs.len() && n_total < self.cfg.issue_width {
            let seq = self.rs[i];
            let e = *self.rob.get(seq).expect("RS entry is in the ROB");
            // Dependence readiness.
            let deps_ready = e
                .deps
                .iter()
                .flatten()
                .all(|&p| self.rob.producer_done(p, now));
            if !deps_ready {
                if blocking_blame.is_none() {
                    blocking_blame = Some(self.producer_blame(&e, now));
                }
                i += 1;
                continue;
            }
            let kind = e.fu.uop.kind;
            // Memory disambiguation for loads.
            let mut forward = false;
            if let UopKind::Load { addr } = kind {
                match self.stq.check_load(seq, addr) {
                    LoadCheck::Blocked => {
                        structural = structural.or(Some(StructuralStall::MemDisambiguation));
                        i += 1;
                        continue;
                    }
                    LoadCheck::Forward => forward = true,
                    LoadCheck::Proceed => {}
                }
            }
            // Port allocation.
            let base_lat = self.exec_latency(&kind);
            let Some(port) = self.ports.try_issue(&kind, now, base_lat) else {
                structural = structural.or(Some(StructuralStall::Ports));
                i += 1;
                continue;
            };
            // Execution timing.
            let (ready_at, mem_level) = match kind {
                UopKind::Load { addr } => {
                    if forward {
                        self.stats.store_forwards += 1;
                        (now + u64::from(self.cfg.mem.l1d.latency), Some(HitLevel::L1))
                    } else {
                        let res = self.mem.load(addr, e.fu.uop.pc, now);
                        (res.ready, Some(res.level))
                    }
                }
                UopKind::Store { addr } => {
                    // Address/data ready quickly; the line fill proceeds in
                    // the background through the hierarchy (write-allocate).
                    self.stq.mark_executed(seq);
                    let _ = self.mem.store(addr, e.fu.uop.pc, now);
                    (now + base_lat, None)
                }
                _ => (now + base_lat, None),
            };
            {
                let em = self.rob.get_mut(seq).expect("RS entry is in the ROB");
                em.issued = true;
                em.issued_at = now;
                em.ready_at = ready_at;
                em.exec_lat = ready_at - now;
                em.mem_level = mem_level;
            }
            // A mispredicted correct-path branch schedules the redirect for
            // its completion cycle.
            if e.fu.mispredicted_branch && !e.fu.wrong_path {
                debug_assert!(self.pending_redirect.is_none());
                self.pending_redirect = Some((seq, ready_at));
            }
            let on_vpu = self.ports.is_vpu(port);
            if on_vpu && !kind.is_vfp() {
                vu_used_by_non_vfp = true;
            }
            if kind.is_vfp() {
                self.vfp_waiting -= 1;
            }
            issued_buf.push(IssuedInfo {
                uop: e.fu.uop,
                wrong_path: e.fu.wrong_path,
                on_vpu,
            });
            n_total += 1;
            if !e.fu.wrong_path {
                n_correct += 1;
            }
            self.rs.remove(i);
        }

        // A structural stall only matters if the stage had width left.
        if n_total >= self.cfg.issue_width {
            structural = None;
        }
        if n_total > 0 {
            self.stats.issued_uops += u64::from(n_correct);
            self.stats.issued_wrong_path += u64::from(n_total - n_correct);
        }

        // Only worth computing when a VFP micro-op is actually waiting.
        let vfp_blame = if self.vfp_waiting > 0 {
            self.vfp_blame(now)
        } else {
            None
        };
        let view = IssueView {
            n_total,
            n_correct,
            rs_empty,
            fe_stall: self.frontend.stall_reason(now),
            blocking_blame,
            structural,
            smt_blocked: false,
            issued: &issued_buf,
            vfp_in_rs,
            vfp_blame,
            vu_used_by_non_vfp,
        };
        obs.on_issue(now, &view);
        self.issued_buf = issued_buf;
    }

    // ----- dispatch -------------------------------------------------------

    fn do_dispatch<O: StageObserver>(&mut self, now: u64, obs: &mut O) {
        let mut n_total = 0u32;
        let mut n_correct = 0u32;
        let mut backend_blocked = false;

        while n_total < self.cfg.dispatch_width {
            let Some(f) = self.frontend.peek_ready(now) else {
                break;
            };
            let kind = f.uop.kind;
            if self.rob.is_full() || self.rs.len() >= self.cfg.rs_size {
                backend_blocked = true;
                break;
            }
            if matches!(kind, UopKind::Store { .. }) && self.stq.is_full() {
                backend_blocked = true;
                break;
            }
            if matches!(kind, UopKind::Load { .. }) && self.ldq_count >= self.cfg.ldq_size {
                backend_blocked = true;
                break;
            }
            let f = self.frontend.pop_ready(now).expect("peeked entry");
            let seq = self.rob.next_seq();
            let mut deps = [None; 3];
            for (slot, r) in f.uop.srcs().enumerate() {
                deps[slot] = self.rename[r.index()];
            }
            match kind {
                UopKind::Store { addr } => self.stq.push(seq, addr),
                UopKind::Load { .. } => self.ldq_count += 1,
                _ => {}
            }
            if let Some(d) = f.uop.dst {
                self.rename[d.index()] = Some(seq);
            }
            self.rob.push(RobEntry {
                fu: f,
                seq,
                deps,
                issued: false,
                issued_at: 0,
                ready_at: 0,
                exec_lat: 0,
                mem_level: None,
            });
            self.rs.push(seq);
            if kind.is_vfp() {
                self.vfp_waiting += 1;
            }
            obs.on_dispatch_uop(now, &f.uop);
            n_total += 1;
            if !f.wrong_path {
                n_correct += 1;
            }
        }

        if backend_blocked {
            self.stats.dispatch_backend_blocked_cycles += 1;
        }
        let head_blame = if backend_blocked {
            self.rob.head().and_then(|h| h.blame(now))
        } else {
            None
        };
        let view = DispatchView {
            n_total,
            n_correct,
            backend_blocked,
            smt_blocked: false,
            head_blame,
            fe_stall: self.frontend.stall_reason(now),
        };
        obs.on_dispatch(now, &view);
    }

    // ----- accessors ------------------------------------------------------

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Committed correct-path micro-ops so far.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// The core configuration this core simulates.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// The idealization flags in effect.
    pub fn ideal(&self) -> IdealFlags {
        self.ideal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstacks_model::{AluClass, ArchReg, BranchInfo, BranchKind, ElemType, VecFpOp};

    fn bdw() -> CoreConfig {
        CoreConfig::broadwell()
    }

    fn alu_trace(n: u64) -> impl Iterator<Item = MicroOp> {
        (0..n).map(|i| {
            MicroOp::new(0x1000 + (i % 16) * 4, UopKind::IntAlu(AluClass::Add))
                .with_dst(ArchReg::new((i % 8) as u16))
        })
    }

    #[test]
    fn independent_alus_reach_full_width() {
        // Ideal conditions: tiny loop, perfect caches, no branches.
        let ideal = IdealFlags::none().with_perfect_icache().with_perfect_bpred();
        let mut core = Core::new(bdw(), ideal, alu_trace(40_000));
        let r = core.run(&mut ()).expect("runs");
        assert_eq!(r.committed_uops, 40_000);
        let cpi = r.cpi();
        // 4-wide, 4 ALU ports, no deps → CPI close to 0.25.
        assert!(cpi < 0.30, "CPI {cpi} should approach 0.25");
        assert!(cpi >= 0.25, "CPI {cpi} cannot beat the width");
    }

    #[test]
    fn dependence_chain_serializes() {
        // Every op depends on the previous one → CPI ≈ 1.
        let trace = (0..10_000u64).map(|i| {
            MicroOp::new(0x1000 + (i % 16) * 4, UopKind::IntAlu(AluClass::Add))
                .with_src(ArchReg::new(1))
                .with_dst(ArchReg::new(1))
        });
        let ideal = IdealFlags::none().with_perfect_icache().with_perfect_bpred();
        let mut core = Core::new(bdw(), ideal, trace);
        let r = core.run(&mut ()).expect("runs");
        let cpi = r.cpi();
        assert!(cpi > 0.95, "chained adds must serialize, CPI {cpi}");
        assert!(cpi < 1.2, "chained adds are 1 IPC, CPI {cpi}");
    }

    #[test]
    fn multiplier_latency_shows_in_chain() {
        let trace = (0..5_000u64).map(|i| {
            MicroOp::new(0x1000 + (i % 16) * 4, UopKind::IntAlu(AluClass::Mul))
                .with_src(ArchReg::new(1))
                .with_dst(ArchReg::new(1))
        });
        let ideal = IdealFlags::none().with_perfect_icache().with_perfect_bpred();
        let mut core = Core::new(bdw(), ideal, trace);
        let r = core.run(&mut ()).expect("runs");
        let cpi = r.cpi();
        // BDW imul latency 3 → chained CPI ≈ 3.
        assert!(cpi > 2.8 && cpi < 3.4, "chained muls CPI {cpi} ≈ 3");
    }

    #[test]
    fn single_cycle_alu_idealization_flattens_mul_chain() {
        let trace = (0..5_000u64).map(|i| {
            MicroOp::new(0x1000 + (i % 16) * 4, UopKind::IntAlu(AluClass::Mul))
                .with_src(ArchReg::new(1))
                .with_dst(ArchReg::new(1))
        });
        let ideal = IdealFlags::none()
            .with_perfect_icache()
            .with_perfect_bpred()
            .with_single_cycle_alu();
        let mut core = Core::new(bdw(), ideal, trace);
        let r = core.run(&mut ()).expect("runs");
        let cpi = r.cpi();
        assert!(cpi < 1.2, "1-cycle ALU makes the chain CPI ≈ 1, got {cpi}");
    }

    #[test]
    fn load_misses_stall_the_pipeline() {
        // Independent loads striding far beyond every cache.
        let trace = (0..3_000u64).map(|i| {
            MicroOp::new(0x1000 + (i % 8) * 4, UopKind::Load { addr: i * 8192 })
                .with_dst(ArchReg::new((i % 8) as u16))
        });
        let ideal = IdealFlags::none().with_perfect_icache().with_perfect_bpred();
        let mut core = Core::new(bdw(), ideal, trace);
        let r = core.run(&mut ()).expect("runs");
        assert!(r.cpi() > 1.0, "memory-bound loads must stall, CPI {}", r.cpi());
        assert!(r.mem.l1d.misses > 2_000);
        // Same trace with a perfect D-cache flows at near-ideal CPI.
        let trace2 = (0..3_000u64).map(|i| {
            MicroOp::new(0x1000 + (i % 8) * 4, UopKind::Load { addr: i * 8192 })
                .with_dst(ArchReg::new((i % 8) as u16))
        });
        let mut core2 = Core::new(bdw(), ideal.with_perfect_dcache(), trace2);
        let r2 = core2.run(&mut ()).expect("runs");
        assert!(r2.cpi() < r.cpi() * 0.5, "perfect D$ must help a lot");
    }

    #[test]
    fn mispredicted_branches_cost_cycles_and_squash() {
        // Branches with irregular outcomes; perfect variant for contrast.
        // Hash-derived outcomes are unlearnable for gshare.
        let mk_real = || {
            (0..4_000u64).map(|i| {
                let taken = (i.wrapping_mul(0x9E3779B97F4A7C15) >> 33) & 1 == 0;
                let pc = 0x1000 + (i % 32) * 8;
                MicroOp::new(
                    pc,
                    UopKind::Branch(BranchInfo {
                        taken,
                        target: pc + 64,
                        fallthrough: pc + 8,
                        kind: BranchKind::Cond,
                    }),
                )
            })
        };
        let ideal = IdealFlags::none().with_perfect_icache();
        let mut core = Core::new(bdw(), ideal, mk_real());
        let r = core.run(&mut ()).expect("runs");
        assert!(r.stats.redirects > 100, "irregular branches must mispredict");
        assert!(r.stats.squashed_uops > 0);
        let mut core2 = Core::new(bdw(), ideal.with_perfect_bpred(), mk_real());
        let r2 = core2.run(&mut ()).expect("runs");
        assert_eq!(r2.stats.redirects, 0);
        assert!(r2.cycles < r.cycles, "perfect bpred must be faster");
    }

    #[test]
    fn store_load_forwarding_works() {
        // store to X; load from X immediately after: must forward, not miss.
        let mut uops = Vec::new();
        for i in 0..2_000u64 {
            let addr = 0x100000 + (i % 4) * 8;
            uops.push(
                MicroOp::new(0x1000 + (i % 8) * 8, UopKind::Store { addr })
                    .with_src(ArchReg::new(1)),
            );
            uops.push(
                MicroOp::new(0x1004 + (i % 8) * 8, UopKind::Load { addr })
                    .with_dst(ArchReg::new(2)),
            );
        }
        let ideal = IdealFlags::none().with_perfect_icache().with_perfect_bpred();
        let mut core = Core::new(bdw(), ideal, uops.into_iter());
        let r = core.run(&mut ()).expect("runs");
        assert!(r.stats.store_forwards > 1_000, "loads should forward");
    }

    #[test]
    fn vfp_ops_count_flops() {
        let trace = (0..1_000u64).map(|i| {
            MicroOp::new(
                0x1000 + (i % 8) * 4,
                UopKind::VecFp(VecFpOp::fma(8, ElemType::F32)),
            )
            .with_dst(ArchReg::new((i % 8) as u16))
        });
        let ideal = IdealFlags::none().with_perfect_icache().with_perfect_bpred();
        let mut core = Core::new(bdw(), ideal, trace);
        let r = core.run(&mut ()).expect("runs");
        assert_eq!(r.committed_flops, 1_000 * 16); // 8 lanes × 2 (FMA)
    }

    #[test]
    fn knl_is_narrower_than_bdw() {
        let ideal = IdealFlags::none().with_perfect_icache().with_perfect_bpred();
        let mut bdw_core = Core::new(bdw(), ideal, alu_trace(20_000));
        let rb = bdw_core.run(&mut ()).expect("runs");
        let mut knl_core = Core::new(CoreConfig::knights_landing(), ideal, alu_trace(20_000));
        let rk = knl_core.run(&mut ()).expect("runs");
        assert!(rk.cpi() > rb.cpi() * 1.5, "2-wide KNL must be slower");
        assert!(rk.cpi() >= 0.5, "KNL CPI floor is 1/2");
    }

    #[test]
    fn observer_sees_all_stages() {
        #[derive(Default)]
        struct Probe {
            d: u64,
            i: u64,
            c: u64,
            committed: u64,
        }
        impl StageObserver for Probe {
            fn on_dispatch(&mut self, _c: u64, _v: &DispatchView) {
                self.d += 1;
            }
            fn on_issue(&mut self, _c: u64, _v: &IssueView<'_>) {
                self.i += 1;
            }
            fn on_commit(&mut self, _c: u64, _v: &CommitView) {
                self.c += 1;
            }
            fn on_commit_uop(&mut self, _c: u64, _u: &MicroOp) {
                self.committed += 1;
            }
        }
        let mut probe = Probe::default();
        let ideal = IdealFlags::none().with_perfect_icache().with_perfect_bpred();
        let mut core = Core::new(bdw(), ideal, alu_trace(1_000));
        let r = core.run(&mut probe).expect("runs");
        assert_eq!(probe.d, r.cycles);
        assert_eq!(probe.i, r.cycles);
        assert_eq!(probe.c, r.cycles);
        assert_eq!(probe.committed, 1_000);
    }

    #[test]
    fn determinism() {
        let mk = || {
            (0..5_000u64).map(|i| {
                let pc = 0x1000 + (i % 64) * 4;
                if i % 7 == 0 {
                    MicroOp::new(pc, UopKind::Load { addr: (i * 2654435761) % 262144 })
                        .with_dst(ArchReg::new(3))
                } else {
                    MicroOp::new(pc, UopKind::IntAlu(AluClass::Add))
                        .with_src(ArchReg::new(3))
                        .with_dst(ArchReg::new((i % 8) as u16))
                }
            })
        };
        let run = || {
            let mut c = Core::new(bdw(), IdealFlags::none(), mk());
            c.run(&mut ()).expect("runs")
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "identical traces must give identical results");
    }

    #[test]
    fn run_uops_stops_early() {
        let ideal = IdealFlags::none().with_perfect_icache().with_perfect_bpred();
        let mut core = Core::new(bdw(), ideal, alu_trace(100_000));
        let r = core.run_uops(5_000, &mut ()).expect("runs");
        assert!(r.committed_uops >= 5_000);
        assert!(r.committed_uops < 5_010, "stops shortly after the target");
    }
}
