//! Wakeup-driven reservation-station bookkeeping.
//!
//! The engine used to keep one unified `Vec<(thread, seq)>` of waiting
//! micro-ops and, every cycle, re-derive everything from it: dependence
//! readiness by chasing `producer_done` per entry per cycle, per-thread
//! occupancy and the oldest waiting vector-FP op by re-filtering the whole
//! vector, and squash recovery by recounting. This module replaces that
//! with the classic scheduler split:
//!
//! * a per-thread **partition** ([`ThreadSched`]) of waiting micro-ops in
//!   dispatch (= sequence) order, each tracking how many of its producers
//!   have not issued yet (`pending`) and the cycle its already-issued
//!   producers' results are available (`ready_time`);
//! * a per-ROB-slot **consumer list** ([`ThreadSched::consumers`]): when a
//!   producer issues and its completion time becomes known, it wakes its
//!   consumers by decrementing their `pending` instead of every consumer
//!   polling every cycle;
//! * a sorted list of waiting vector-FP sequence numbers
//!   ([`ThreadSched::vfp`]) so the FLOPS accounting reads the oldest
//!   waiting VFP op in O(1);
//! * a global, dispatch-stamp-ordered **ready queue** (owned by the
//!   engine) holding only entries with `pending == 0`.
//!
//! Sequence numbers are reused after a squash (the window truncates and
//! dispatch continues from the branch), so a consumer list may hold stale
//! references. Every entry therefore carries a globally unique, monotone
//! dispatch [`RsEntry::stamp`]; a wakeup only applies when both the
//! sequence number *and* the stamp match. The stamp order is exactly the
//! old unified-vector order, which keeps the issue scan bit-identical
//! (oldest-first within a thread, dispatch-interleaved across threads).
//!
//! Issue removal is a **tombstone** (`pending = DEAD`), not a
//! `Vec::remove`: removing from the middle of the seq-sorted partition
//! memmoves the tail on every issued micro-op, which profiles as the
//! single largest block of the issue stage. Dead entries keep their slot
//! (so `find`'s binary search stays valid — seq order is preserved, and a
//! sequence number can only be reused after a squash truncates every
//! younger entry, dead or alive) and are compacted away in bulk once they
//! outnumber the live ones.
//!
//! # Layout
//!
//! The partition is stored as parallel columns (`seqs` / `stamps` /
//! `pending` / `ready_time` / `kinds`), not a `Vec` of 56-byte entry
//! structs. The per-cycle consumers are column-local: `find`'s binary
//! search bisects a dense `u64` column, and `first_not_done` — which runs
//! once per thread per cycle and used to wade through dozens of leading
//! tombstones (issue is oldest-first, so tombstones concentrate at the
//! front) — scans two small columns starting at [`ThreadSched::first_live`],
//! a cursor past the contiguous dead prefix.

use mstacks_model::UopKind;

/// `pending` sentinel marking an entry that already issued (tombstone).
/// Real pending counts are bounded by the dependence-slot count (3).
const DEAD: u8 = u8::MAX;

/// One waiting (dispatched, not yet issued) micro-op — the *registration*
/// view handed to [`ThreadSched::push`]; storage is columnar.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RsEntry {
    /// ROB sequence number (per-thread, reused after squashes).
    pub seq: u64,
    /// Globally unique dispatch stamp (never reused; total dispatch order
    /// across threads).
    pub stamp: u64,
    /// Producers that have not issued yet (counted per dependence slot, so
    /// a duplicated source counts twice and is woken twice), or [`DEAD`]
    /// once the entry itself issued.
    pub pending: u8,
    /// Cycle every already-issued producer's result is available. The
    /// entry is dependence-ready at `now` iff `pending == 0 &&
    /// ready_time <= now`.
    pub ready_time: u64,
    /// Op kind, denormalized from the ROB so the issue scan touches the
    /// ROB only for micro-ops it actually issues.
    pub kind: UopKind,
}

/// One entry of the engine-owned global ready queue.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ReadyRef {
    /// Dispatch stamp — the queue is sorted by it.
    pub stamp: u64,
    /// Earliest cycle the entry is dependence-ready.
    pub due: u64,
    /// Hardware thread.
    pub tid: u32,
    /// ROB sequence number within that thread.
    pub seq: u64,
    /// Op kind (denormalized, see [`RsEntry::kind`]).
    pub kind: UopKind,
}

/// Per-thread scheduler state, stored as parallel columns in sequence
/// (= per-thread stamp) order, with issued entries left in place as
/// tombstones until compaction.
#[derive(Debug)]
pub(crate) struct ThreadSched {
    /// ROB sequence number per waiting micro-op (ascending).
    seqs: Vec<u64>,
    /// Dispatch stamp per entry (ascending; parallel to `seqs`).
    stamps: Vec<u64>,
    /// Unissued-producer count per entry, or [`DEAD`] (tombstone).
    pending: Vec<u8>,
    /// Cycle the issued producers' results are available, per entry.
    ready_time: Vec<u64>,
    /// Op kind per entry.
    kinds: Vec<UopKind>,
    /// Index of the first non-tombstone slot: every slot before it is
    /// DEAD. Issue is oldest-first, so the dead prefix is the common case
    /// and the cursor lets `first_not_done` skip it in O(1).
    first_live: usize,
    /// Live (non-tombstone) entry count — the RS occupancy.
    live: usize,
    /// Sequence numbers of waiting vector-FP micro-ops, ascending.
    pub vfp: Vec<u64>,
    /// `consumers[rob_slot]` = `(consumer seq, consumer stamp)` pairs
    /// registered at dispatch, woken when the producer in that ROB slot
    /// issues. Indexed by the ROB's stable ring slot; the inner vectors
    /// are reused (cleared, never dropped) so steady state allocates
    /// nothing.
    pub consumers: Vec<Vec<(u64, u64)>>,
}

impl ThreadSched {
    pub fn new(rob_capacity: usize) -> Self {
        ThreadSched {
            seqs: Vec::with_capacity(rob_capacity),
            stamps: Vec::with_capacity(rob_capacity),
            pending: Vec::with_capacity(rob_capacity),
            ready_time: Vec::with_capacity(rob_capacity),
            kinds: Vec::with_capacity(rob_capacity),
            first_live: 0,
            live: 0,
            vfp: Vec::new(),
            consumers: vec![Vec::new(); rob_capacity],
        }
    }

    /// Number of waiting micro-ops of this thread (tombstones excluded).
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Registers a freshly dispatched entry (entries arrive in seq order).
    #[inline]
    pub fn push(&mut self, e: RsEntry) {
        debug_assert!(e.pending != DEAD);
        debug_assert!(self.seqs.last().is_none_or(|&l| l < e.seq));
        self.seqs.push(e.seq);
        self.stamps.push(e.stamp);
        self.pending.push(e.pending);
        self.ready_time.push(e.ready_time);
        self.kinds.push(e.kind);
        self.live += 1;
    }

    /// Index of the entry with `seq`, if any (binary search — the
    /// partition is seq-sorted; tombstones keep their slot and order).
    #[inline]
    pub fn find(&self, seq: u64) -> Option<usize> {
        self.seqs.binary_search(&seq).ok()
    }

    /// Delivers a producer wakeup to consumer `(cseq, cstamp)`: one fewer
    /// pending producer, readiness no earlier than `ready_at`. Returns
    /// `Some((stamp, due, kind))` when the consumer just became
    /// dependence-free (it joins the ready queue), `None` on a stale
    /// registration (seq reused after a squash, or consumer already dead).
    #[inline]
    pub fn wake(&mut self, cseq: u64, cstamp: u64, ready_at: u64) -> Option<(u64, u64, UopKind)> {
        let i = self.find(cseq)?;
        if self.stamps[i] != cstamp || self.pending[i] == DEAD {
            return None;
        }
        self.pending[i] -= 1;
        self.ready_time[i] = self.ready_time[i].max(ready_at);
        (self.pending[i] == 0).then(|| (self.stamps[i], self.ready_time[i], self.kinds[i]))
    }

    /// Tombstones the entry with `seq` (it issued), compacting the
    /// partition once tombstones dominate.
    pub fn mark_issued(&mut self, seq: u64) {
        if let Some(i) = self.find(seq) {
            if self.pending[i] != DEAD {
                self.pending[i] = DEAD;
                self.live -= 1;
                if i == self.first_live {
                    self.advance_first_live();
                }
            }
        }
        let dead = self.seqs.len() - self.live;
        if dead >= 32 && dead >= self.live {
            self.compact();
        }
    }

    /// Moves [`ThreadSched::first_live`] past the contiguous dead prefix.
    #[inline]
    fn advance_first_live(&mut self) {
        while self.first_live < self.pending.len() && self.pending[self.first_live] == DEAD {
            self.first_live += 1;
        }
    }

    /// Drops every tombstone, shifting the live entries down in place
    /// across all columns (order preserved).
    fn compact(&mut self) {
        let mut w = 0;
        for r in 0..self.seqs.len() {
            if self.pending[r] != DEAD {
                self.seqs[w] = self.seqs[r];
                self.stamps[w] = self.stamps[r];
                self.pending[w] = self.pending[r];
                self.ready_time[w] = self.ready_time[r];
                self.kinds[w] = self.kinds[r];
                w += 1;
            }
        }
        self.truncate(w);
        self.first_live = 0;
    }

    /// Truncates every column to `len` entries.
    #[inline]
    fn truncate(&mut self, len: usize) {
        self.seqs.truncate(len);
        self.stamps.truncate(len);
        self.pending.truncate(len);
        self.ready_time.truncate(len);
        self.kinds.truncate(len);
    }

    /// Drops every waiting entry younger than `seq` (squash), returning
    /// how many **live** entries were removed (tombstones already left
    /// the occupancy count when they issued).
    pub fn squash_younger_than(&mut self, seq: u64) -> usize {
        let keep = self.seqs.partition_point(|&s| s <= seq);
        let removed_live = self.pending[keep..].iter().filter(|&&p| p != DEAD).count();
        self.truncate(keep);
        self.first_live = self.first_live.min(keep);
        self.live -= removed_live;
        let vfp_keep = self.vfp.partition_point(|&s| s <= seq);
        self.vfp.truncate(vfp_keep);
        removed_live
    }

    /// Removes `seq` from the waiting-VFP list (it issued).
    pub fn remove_vfp(&mut self, seq: u64) {
        if let Ok(i) = self.vfp.binary_search(&seq) {
            self.vfp.remove(i);
        }
    }

    /// The oldest waiting entry whose dependences are not all done at
    /// `now` — the issue-stage blocking candidate (paper Table II: the
    /// producer of the first non-ready instruction gets the blame).
    /// Returns its `(seq, stamp)`.
    #[inline]
    pub fn first_not_done(&self, now: u64) -> Option<(u64, u64)> {
        for i in self.first_live..self.pending.len() {
            let p = self.pending[i];
            if p != DEAD && (p > 0 || self.ready_time[i] > now) {
                return Some((self.seqs[i], self.stamps[i]));
            }
        }
        None
    }

    /// Raw slot count including tombstones (tests only).
    #[cfg(test)]
    fn raw_len(&self) -> usize {
        self.seqs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstacks_model::AluClass;

    fn entry(seq: u64, stamp: u64) -> RsEntry {
        RsEntry {
            seq,
            stamp,
            pending: 0,
            ready_time: 0,
            kind: UopKind::IntAlu(AluClass::Add),
        }
    }

    #[test]
    fn find_and_mark_issued_by_seq() {
        let mut s = ThreadSched::new(8);
        for seq in [3, 5, 9] {
            s.push(entry(seq, seq * 10));
        }
        assert_eq!(s.find(5), Some(1));
        assert_eq!(s.find(4), None);
        s.mark_issued(5);
        assert_eq!(s.len(), 2);
        // Tombstone keeps its slot; the live entries are still findable.
        assert_eq!(s.find(9), Some(2));
        assert!(s.first_not_done(0).is_none()); // none pending
    }

    #[test]
    fn squash_truncates_entries_and_vfp() {
        let mut s = ThreadSched::new(8);
        for seq in 0..6 {
            s.push(entry(seq, seq));
        }
        s.vfp = vec![1, 3, 5];
        s.mark_issued(4); // tombstones must not count as removed occupancy
        let removed = s.squash_younger_than(2);
        assert_eq!(removed, 2);
        assert_eq!(s.len(), 3);
        assert_eq!(s.vfp, vec![1]);
    }

    #[test]
    fn first_not_done_respects_pending_and_ready_time() {
        let mut s = ThreadSched::new(8);
        let mut a = entry(0, 0); // done (issued producers completed)
        a.ready_time = 5;
        let mut b = entry(1, 1); // waiting on an unissued producer
        b.pending = 1;
        let mut c = entry(2, 2); // waiting on an in-flight result
        c.ready_time = 20;
        s.push(a);
        s.push(b);
        s.push(c);
        assert_eq!(s.first_not_done(10).unwrap().0, 1);
        s.mark_issued(1);
        assert_eq!(s.first_not_done(10).unwrap().0, 2);
        assert!(s.first_not_done(30).is_none());
    }

    #[test]
    fn first_live_cursor_skips_dead_prefix() {
        let mut s = ThreadSched::new(64);
        for seq in 0..8 {
            let mut e = entry(seq, seq);
            e.pending = 1;
            s.push(e);
        }
        // Issue the oldest three in order: the cursor tracks the prefix.
        for seq in 0..3 {
            // wake then issue, as the engine does
            assert!(s.wake(seq, seq, 0).is_some());
            s.mark_issued(seq);
        }
        assert_eq!(s.first_live, 3);
        assert_eq!(s.first_not_done(100).unwrap().0, 3);
        // An out-of-order issue leaves a hole; the cursor stays behind it
        // until the prefix catches up.
        s.wake(5, 5, 0);
        s.mark_issued(5);
        assert_eq!(s.first_live, 3);
        s.wake(3, 3, 0);
        s.mark_issued(3);
        s.wake(4, 4, 0);
        s.mark_issued(4);
        assert_eq!(s.first_live, 6, "cursor jumps the filled-in hole");
    }

    #[test]
    fn wake_decrements_and_guards_stale_and_dead() {
        let mut s = ThreadSched::new(8);
        let mut e = entry(7, 70);
        e.pending = 2;
        s.push(e);
        assert_eq!(s.wake(7, 99, 10), None); // stamp mismatch (stale)
        assert_eq!(s.wake(7, 70, 10), None); // 2 -> 1, not ready yet
        assert_eq!(s.wake(7, 70, 15), Some((70, 15, e.kind)));
        s.mark_issued(7);
        assert_eq!(s.wake(7, 70, 20), None); // dead entries ignore wakeups
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn compaction_preserves_live_set_and_order() {
        let mut s = ThreadSched::new(256);
        for seq in 0..100 {
            s.push(entry(seq, seq));
        }
        // Issue the evens; tombstones eventually dominate and compact.
        for seq in (0..100).step_by(2) {
            s.mark_issued(seq);
        }
        assert_eq!(s.len(), 50);
        assert!(s.raw_len() < 100); // compaction fired
        for seq in (1..100).step_by(2) {
            assert!(s.find(seq).is_some());
        }
    }
}
