//! Wakeup-driven reservation-station bookkeeping.
//!
//! The engine used to keep one unified `Vec<(thread, seq)>` of waiting
//! micro-ops and, every cycle, re-derive everything from it: dependence
//! readiness by chasing `producer_done` per entry per cycle, per-thread
//! occupancy and the oldest waiting vector-FP op by re-filtering the whole
//! vector, and squash recovery by recounting. This module replaces that
//! with the classic scheduler split:
//!
//! * a per-thread **partition** ([`ThreadSched::entries`]) of waiting
//!   [`RsEntry`]s in dispatch (= sequence) order, each tracking how many
//!   of its producers have not issued yet (`pending`) and the cycle its
//!   already-issued producers' results are available (`ready_time`);
//! * a per-ROB-slot **consumer list** ([`ThreadSched::consumers`]): when a
//!   producer issues and its completion time becomes known, it wakes its
//!   consumers by decrementing their `pending` instead of every consumer
//!   polling every cycle;
//! * a sorted list of waiting vector-FP sequence numbers
//!   ([`ThreadSched::vfp`]) so the FLOPS accounting reads the oldest
//!   waiting VFP op in O(1);
//! * a global, dispatch-stamp-ordered **ready queue** (owned by the
//!   engine) holding only entries with `pending == 0`.
//!
//! Sequence numbers are reused after a squash (the window truncates and
//! dispatch continues from the branch), so a consumer list may hold stale
//! references. Every entry therefore carries a globally unique, monotone
//! dispatch [`RsEntry::stamp`]; a wakeup only applies when both the
//! sequence number *and* the stamp match. The stamp order is exactly the
//! old unified-vector order, which keeps the issue scan bit-identical
//! (oldest-first within a thread, dispatch-interleaved across threads).
//!
//! Issue removal is a **tombstone** (`pending = DEAD`), not a
//! `Vec::remove`: removing from the middle of the seq-sorted partition
//! memmoves the tail on every issued micro-op, which profiles as the
//! single largest block of the issue stage. Dead entries keep their slot
//! (so `find`'s binary search stays valid — seq order is preserved, and a
//! sequence number can only be reused after a squash truncates every
//! younger entry, dead or alive) and are compacted away in bulk once they
//! outnumber the live ones.

use mstacks_model::UopKind;

/// `pending` sentinel marking an entry that already issued (tombstone).
/// Real pending counts are bounded by the dependence-slot count (3).
const DEAD: u8 = u8::MAX;

/// One waiting (dispatched, not yet issued) micro-op.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RsEntry {
    /// ROB sequence number (per-thread, reused after squashes).
    pub seq: u64,
    /// Globally unique dispatch stamp (never reused; total dispatch order
    /// across threads).
    pub stamp: u64,
    /// Producers that have not issued yet (counted per dependence slot, so
    /// a duplicated source counts twice and is woken twice), or [`DEAD`]
    /// once the entry itself issued.
    pub pending: u8,
    /// Cycle every already-issued producer's result is available. The
    /// entry is dependence-ready at `now` iff `pending == 0 &&
    /// ready_time <= now`.
    pub ready_time: u64,
    /// Op kind, denormalized from the ROB so the issue scan touches the
    /// ROB only for micro-ops it actually issues.
    pub kind: UopKind,
}

/// One entry of the engine-owned global ready queue.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ReadyRef {
    /// Dispatch stamp — the queue is sorted by it.
    pub stamp: u64,
    /// Earliest cycle the entry is dependence-ready.
    pub due: u64,
    /// Hardware thread.
    pub tid: u32,
    /// ROB sequence number within that thread.
    pub seq: u64,
    /// Op kind (denormalized, see [`RsEntry::kind`]).
    pub kind: UopKind,
}

/// Per-thread scheduler state.
#[derive(Debug)]
pub(crate) struct ThreadSched {
    /// Waiting micro-ops in sequence (= per-thread stamp) order, with
    /// issued entries left in place as tombstones until compaction.
    pub entries: Vec<RsEntry>,
    /// Live (non-tombstone) entry count — the RS occupancy.
    live: usize,
    /// Sequence numbers of waiting vector-FP micro-ops, ascending.
    pub vfp: Vec<u64>,
    /// `consumers[rob_slot]` = `(consumer seq, consumer stamp)` pairs
    /// registered at dispatch, woken when the producer in that ROB slot
    /// issues. Indexed by the ROB's stable ring slot; the inner vectors
    /// are reused (cleared, never dropped) so steady state allocates
    /// nothing.
    pub consumers: Vec<Vec<(u64, u64)>>,
}

impl ThreadSched {
    pub fn new(rob_capacity: usize) -> Self {
        ThreadSched {
            entries: Vec::with_capacity(rob_capacity),
            live: 0,
            vfp: Vec::new(),
            consumers: vec![Vec::new(); rob_capacity],
        }
    }

    /// Number of waiting micro-ops of this thread (tombstones excluded).
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Registers a freshly dispatched entry (entries arrive in seq order).
    #[inline]
    pub fn push(&mut self, e: RsEntry) {
        debug_assert!(e.pending != DEAD);
        debug_assert!(self.entries.last().is_none_or(|l| l.seq < e.seq));
        self.entries.push(e);
        self.live += 1;
    }

    /// Index of the entry with `seq`, if any (binary search — the
    /// partition is seq-sorted; tombstones keep their slot and order).
    #[inline]
    pub fn find(&self, seq: u64) -> Option<usize> {
        self.entries.binary_search_by(|e| e.seq.cmp(&seq)).ok()
    }

    /// Delivers a producer wakeup to consumer `(cseq, cstamp)`: one fewer
    /// pending producer, readiness no earlier than `ready_at`. Returns
    /// `Some((stamp, due, kind))` when the consumer just became
    /// dependence-free (it joins the ready queue), `None` on a stale
    /// registration (seq reused after a squash, or consumer already dead).
    #[inline]
    pub fn wake(&mut self, cseq: u64, cstamp: u64, ready_at: u64) -> Option<(u64, u64, UopKind)> {
        let i = self.find(cseq)?;
        let c = &mut self.entries[i];
        if c.stamp != cstamp || c.pending == DEAD {
            return None;
        }
        c.pending -= 1;
        c.ready_time = c.ready_time.max(ready_at);
        (c.pending == 0).then_some((c.stamp, c.ready_time, c.kind))
    }

    /// Tombstones the entry with `seq` (it issued), compacting the
    /// partition once tombstones dominate.
    pub fn mark_issued(&mut self, seq: u64) {
        if let Some(i) = self.find(seq) {
            if self.entries[i].pending != DEAD {
                self.entries[i].pending = DEAD;
                self.live -= 1;
            }
        }
        let dead = self.entries.len() - self.live;
        if dead >= 32 && dead >= self.live {
            self.entries.retain(|e| e.pending != DEAD);
        }
    }

    /// Drops every waiting entry younger than `seq` (squash), returning
    /// how many **live** entries were removed (tombstones already left
    /// the occupancy count when they issued).
    pub fn squash_younger_than(&mut self, seq: u64) -> usize {
        let keep = self.entries.partition_point(|e| e.seq <= seq);
        let removed_live = self.entries[keep..]
            .iter()
            .filter(|e| e.pending != DEAD)
            .count();
        self.entries.truncate(keep);
        self.live -= removed_live;
        let vfp_keep = self.vfp.partition_point(|&s| s <= seq);
        self.vfp.truncate(vfp_keep);
        removed_live
    }

    /// Removes `seq` from the waiting-VFP list (it issued).
    pub fn remove_vfp(&mut self, seq: u64) {
        if let Ok(i) = self.vfp.binary_search(&seq) {
            self.vfp.remove(i);
        }
    }

    /// The oldest waiting entry whose dependences are not all done at
    /// `now` — the issue-stage blocking candidate (paper Table II: the
    /// producer of the first non-ready instruction gets the blame).
    #[inline]
    pub fn first_not_done(&self, now: u64) -> Option<&RsEntry> {
        self.entries
            .iter()
            .find(|e| e.pending != DEAD && (e.pending > 0 || e.ready_time > now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstacks_model::AluClass;

    fn entry(seq: u64, stamp: u64) -> RsEntry {
        RsEntry {
            seq,
            stamp,
            pending: 0,
            ready_time: 0,
            kind: UopKind::IntAlu(AluClass::Add),
        }
    }

    #[test]
    fn find_and_mark_issued_by_seq() {
        let mut s = ThreadSched::new(8);
        for seq in [3, 5, 9] {
            s.push(entry(seq, seq * 10));
        }
        assert_eq!(s.find(5), Some(1));
        assert_eq!(s.find(4), None);
        s.mark_issued(5);
        assert_eq!(s.len(), 2);
        // Tombstone keeps its slot; the live entries are still findable.
        assert_eq!(s.find(9), Some(2));
        assert!(s.first_not_done(0).is_none()); // none pending
    }

    #[test]
    fn squash_truncates_entries_and_vfp() {
        let mut s = ThreadSched::new(8);
        for seq in 0..6 {
            s.push(entry(seq, seq));
        }
        s.vfp = vec![1, 3, 5];
        s.mark_issued(4); // tombstones must not count as removed occupancy
        let removed = s.squash_younger_than(2);
        assert_eq!(removed, 2);
        assert_eq!(s.len(), 3);
        assert_eq!(s.vfp, vec![1]);
    }

    #[test]
    fn first_not_done_respects_pending_and_ready_time() {
        let mut s = ThreadSched::new(8);
        let mut a = entry(0, 0); // done (issued producers completed)
        a.ready_time = 5;
        let mut b = entry(1, 1); // waiting on an unissued producer
        b.pending = 1;
        let mut c = entry(2, 2); // waiting on an in-flight result
        c.ready_time = 20;
        s.push(a);
        s.push(b);
        s.push(c);
        assert_eq!(s.first_not_done(10).unwrap().seq, 1);
        s.mark_issued(1);
        assert_eq!(s.first_not_done(10).unwrap().seq, 2);
        assert!(s.first_not_done(30).is_none());
    }

    #[test]
    fn wake_decrements_and_guards_stale_and_dead() {
        let mut s = ThreadSched::new(8);
        let mut e = entry(7, 70);
        e.pending = 2;
        s.push(e);
        assert_eq!(s.wake(7, 99, 10), None); // stamp mismatch (stale)
        assert_eq!(s.wake(7, 70, 10), None); // 2 -> 1, not ready yet
        assert_eq!(s.wake(7, 70, 15), Some((70, 15, e.kind)));
        s.mark_issued(7);
        assert_eq!(s.wake(7, 70, 20), None); // dead entries ignore wakeups
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn compaction_preserves_live_set_and_order() {
        let mut s = ThreadSched::new(256);
        for seq in 0..100 {
            s.push(entry(seq, seq));
        }
        // Issue the evens; tombstones eventually dominate and compact.
        for seq in (0..100).step_by(2) {
            s.mark_issued(seq);
        }
        assert_eq!(s.len(), 50);
        assert!(s.entries.len() < 100); // compaction fired
        for seq in (1..100).step_by(2) {
            assert!(s.find(seq).is_some());
        }
    }
}
