//! Wakeup-driven reservation-station bookkeeping.
//!
//! The engine used to keep one unified `Vec<(thread, seq)>` of waiting
//! micro-ops and, every cycle, re-derive everything from it: dependence
//! readiness by chasing `producer_done` per entry per cycle, per-thread
//! occupancy and the oldest waiting vector-FP op by re-filtering the whole
//! vector, and squash recovery by recounting. This module replaces that
//! with the classic scheduler split:
//!
//! * a per-thread **partition** ([`ThreadSched::entries`]) of waiting
//!   [`RsEntry`]s in dispatch (= sequence) order, each tracking how many
//!   of its producers have not issued yet (`pending`) and the cycle its
//!   already-issued producers' results are available (`ready_time`);
//! * a per-ROB-slot **consumer list** ([`ThreadSched::consumers`]): when a
//!   producer issues and its completion time becomes known, it wakes its
//!   consumers by decrementing their `pending` instead of every consumer
//!   polling every cycle;
//! * a sorted list of waiting vector-FP sequence numbers
//!   ([`ThreadSched::vfp`]) so the FLOPS accounting reads the oldest
//!   waiting VFP op in O(1);
//! * a global, dispatch-stamp-ordered **ready queue** (owned by the
//!   engine) holding only entries with `pending == 0`.
//!
//! Sequence numbers are reused after a squash (the window truncates and
//! dispatch continues from the branch), so a consumer list may hold stale
//! references. Every entry therefore carries a globally unique, monotone
//! dispatch [`RsEntry::stamp`]; a wakeup only applies when both the
//! sequence number *and* the stamp match. The stamp order is exactly the
//! old unified-vector order, which keeps the issue scan bit-identical
//! (oldest-first within a thread, dispatch-interleaved across threads).

use mstacks_model::UopKind;

/// One waiting (dispatched, not yet issued) micro-op.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RsEntry {
    /// ROB sequence number (per-thread, reused after squashes).
    pub seq: u64,
    /// Globally unique dispatch stamp (never reused; total dispatch order
    /// across threads).
    pub stamp: u64,
    /// Producers that have not issued yet (counted per dependence slot, so
    /// a duplicated source counts twice and is woken twice).
    pub pending: u8,
    /// Cycle every already-issued producer's result is available. The
    /// entry is dependence-ready at `now` iff `pending == 0 &&
    /// ready_time <= now`.
    pub ready_time: u64,
    /// Op kind, denormalized from the ROB so the issue scan touches the
    /// ROB only for micro-ops it actually issues.
    pub kind: UopKind,
}

/// One entry of the engine-owned global ready queue.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ReadyRef {
    /// Dispatch stamp — the queue is sorted by it.
    pub stamp: u64,
    /// Earliest cycle the entry is dependence-ready.
    pub due: u64,
    /// Hardware thread.
    pub tid: u32,
    /// ROB sequence number within that thread.
    pub seq: u64,
    /// Op kind (denormalized, see [`RsEntry::kind`]).
    pub kind: UopKind,
}

/// Per-thread scheduler state.
#[derive(Debug)]
pub(crate) struct ThreadSched {
    /// Waiting micro-ops in sequence (= per-thread stamp) order.
    pub entries: Vec<RsEntry>,
    /// Sequence numbers of waiting vector-FP micro-ops, ascending.
    pub vfp: Vec<u64>,
    /// `consumers[rob_slot]` = `(consumer seq, consumer stamp)` pairs
    /// registered at dispatch, woken when the producer in that ROB slot
    /// issues. Indexed by the ROB's stable ring slot; the inner vectors
    /// are reused (cleared, never dropped) so steady state allocates
    /// nothing.
    pub consumers: Vec<Vec<(u64, u64)>>,
}

impl ThreadSched {
    pub fn new(rob_capacity: usize) -> Self {
        ThreadSched {
            entries: Vec::with_capacity(rob_capacity),
            vfp: Vec::new(),
            consumers: vec![Vec::new(); rob_capacity],
        }
    }

    /// Number of waiting micro-ops of this thread.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Index of the waiting entry with `seq`, if any (binary search — the
    /// partition is seq-sorted).
    #[inline]
    pub fn find(&self, seq: u64) -> Option<usize> {
        self.entries.binary_search_by(|e| e.seq.cmp(&seq)).ok()
    }

    /// Removes the waiting entry with `seq` (it issued).
    pub fn remove_seq(&mut self, seq: u64) {
        if let Some(i) = self.find(seq) {
            self.entries.remove(i);
        }
    }

    /// Drops every waiting entry younger than `seq` (squash), returning
    /// how many were removed.
    pub fn squash_younger_than(&mut self, seq: u64) -> usize {
        let keep = self.entries.partition_point(|e| e.seq <= seq);
        let removed = self.entries.len() - keep;
        self.entries.truncate(keep);
        let vfp_keep = self.vfp.partition_point(|&s| s <= seq);
        self.vfp.truncate(vfp_keep);
        removed
    }

    /// Removes `seq` from the waiting-VFP list (it issued).
    pub fn remove_vfp(&mut self, seq: u64) {
        if let Ok(i) = self.vfp.binary_search(&seq) {
            self.vfp.remove(i);
        }
    }

    /// The oldest waiting entry whose dependences are not all done at
    /// `now` — the issue-stage blocking candidate (paper Table II: the
    /// producer of the first non-ready instruction gets the blame).
    #[inline]
    pub fn first_not_done(&self, now: u64) -> Option<&RsEntry> {
        self.entries
            .iter()
            .find(|e| e.pending > 0 || e.ready_time > now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstacks_model::AluClass;

    fn entry(seq: u64, stamp: u64) -> RsEntry {
        RsEntry {
            seq,
            stamp,
            pending: 0,
            ready_time: 0,
            kind: UopKind::IntAlu(AluClass::Add),
        }
    }

    #[test]
    fn find_and_remove_by_seq() {
        let mut s = ThreadSched::new(8);
        for seq in [3, 5, 9] {
            s.entries.push(entry(seq, seq * 10));
        }
        assert_eq!(s.find(5), Some(1));
        assert_eq!(s.find(4), None);
        s.remove_seq(5);
        assert_eq!(s.len(), 2);
        assert_eq!(s.find(9), Some(1));
    }

    #[test]
    fn squash_truncates_entries_and_vfp() {
        let mut s = ThreadSched::new(8);
        for seq in 0..6 {
            s.entries.push(entry(seq, seq));
        }
        s.vfp = vec![1, 3, 5];
        let removed = s.squash_younger_than(2);
        assert_eq!(removed, 3);
        assert_eq!(s.len(), 3);
        assert_eq!(s.vfp, vec![1]);
    }

    #[test]
    fn first_not_done_respects_pending_and_ready_time() {
        let mut s = ThreadSched::new(8);
        let mut a = entry(0, 0); // done (issued producers completed)
        a.ready_time = 5;
        let mut b = entry(1, 1); // waiting on an unissued producer
        b.pending = 1;
        let mut c = entry(2, 2); // waiting on an in-flight result
        c.ready_time = 20;
        s.entries.extend([a, b, c]);
        assert_eq!(s.first_not_done(10).unwrap().seq, 1);
        s.entries.remove(1);
        assert_eq!(s.first_not_done(10).unwrap().seq, 2);
        assert!(s.first_not_done(30).is_none());
    }
}
