//! Engine self-profiler (`MSTACKS_STAGE_PROF=1`).
//!
//! Per-stage wall-time totals for [`Engine::step`](crate::Engine::step),
//! the in-repo equivalent of call-stack-profiling the simulator itself:
//! before optimizing a stage, measure which stage the cycles actually go
//! to. Costs nothing when disabled — the engine checks the environment
//! variable once at construction and takes an untimed step path.
//!
//! Totals accumulate engine-locally (plain `u64` adds per cycle) and are
//! flushed into process-wide atomics when the engine drops, so
//! whole-session runs (which build and drop engines internally) still
//! report. `bench overhead` prints the [`stage_prof_snapshot`] as a JSON
//! block at exit.

use std::sync::atomic::{AtomicU64, Ordering};

/// The timed sections of one engine cycle, in execution order.
pub const STAGE_PROF_NAMES: [&str; 6] = [
    "resolve",
    "commit",
    "issue",
    "dispatch",
    "fetch",
    "cycle_end",
];

const N: usize = STAGE_PROF_NAMES.len();

static TOTAL_NS: [AtomicU64; N] = [const { AtomicU64::new(0) }; N];
static TOTAL_CYCLES: AtomicU64 = AtomicU64::new(0);

/// Whether `MSTACKS_STAGE_PROF=1` is set (checked once per process).
pub(crate) fn stage_prof_enabled() -> bool {
    static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var_os("MSTACKS_STAGE_PROF").is_some_and(|v| v == "1"))
}

/// Engine-local stage timers; flushed to the process totals on drop.
#[derive(Debug, Default)]
pub(crate) struct LocalStageProf {
    pub ns: [u64; N],
    pub cycles: u64,
}

impl Drop for LocalStageProf {
    fn drop(&mut self) {
        for (total, &ns) in TOTAL_NS.iter().zip(&self.ns) {
            total.fetch_add(ns, Ordering::Relaxed);
        }
        TOTAL_CYCLES.fetch_add(self.cycles, Ordering::Relaxed);
    }
}

/// Process-wide per-stage totals: `(cycles, ns per stage)` in
/// [`STAGE_PROF_NAMES`] order, or `None` when the profiler is off.
pub fn stage_prof_snapshot() -> Option<(u64, [u64; 6])> {
    if !stage_prof_enabled() {
        return None;
    }
    let mut ns = [0u64; N];
    for (out, total) in ns.iter_mut().zip(&TOTAL_NS) {
        *out = total.load(Ordering::Relaxed);
    }
    Some((TOTAL_CYCLES.load(Ordering::Relaxed), ns))
}

/// Zeroes the process-wide totals (between benchmark sections).
pub fn stage_prof_reset() {
    for total in &TOTAL_NS {
        total.store(0, Ordering::Relaxed);
    }
    TOTAL_CYCLES.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_flushes_on_drop() {
        // The env gate only affects `stage_prof_snapshot`; totals always
        // accept flushes, so this test stays independent of the env.
        let before: u64 = TOTAL_NS[0].load(Ordering::Relaxed);
        {
            let mut l = LocalStageProf::default();
            l.ns[0] = 17;
            l.cycles = 3;
        }
        assert!(TOTAL_NS[0].load(Ordering::Relaxed) >= before + 17);
    }
}
