//! Per-stage observation interface.
//!
//! Every cycle, the pipeline publishes one view per accounting stage
//! (dispatch, issue, commit), carrying exactly the state the paper's
//! Table II and Table III algorithms inspect. The accounting layers in
//! `mstacks-core` implement [`StageObserver`]; the unit observer `()` turns
//! all hooks into no-ops, giving the bare simulator for overhead
//! measurements.

use mstacks_mem::{HitLevel, MshrOccupancy};
use mstacks_model::{FrontendStall, MicroOp};

/// Who a backend stall is blamed on, following the paper's decision chain
/// "`if i has Dcache miss → Dcache; elif latency[i] > 1 → ALU_lat; else →
/// depend`".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Blame {
    /// The inspected instruction is a load whose access left the L1D; the
    /// payload is the level that serviced it (the paper's suggested
    /// refinement: "differentiating between the different cache levels").
    Dcache(HitLevel),
    /// The inspected instruction is a load whose completion was pushed
    /// back by *another core's* occupancy of the shared uncore (MSHR pool
    /// or DRAM channel). Only produced in co-run mode; the remaining
    /// (own-traffic) portion of such a miss is still `Dcache`.
    Interference,
    /// The inspected instruction is executing with latency > 1 cycle.
    LongLat,
    /// The inspected instruction is single-cycle but delayed by
    /// dependences (limited ILP).
    Depend,
}

/// Why ready instructions could not issue (structural stalls — only
/// observable at the issue stage, paper §V-A "Other" component).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StructuralStall {
    /// A ready load waits for an older store's address (predicted memory
    /// conflict / conservative disambiguation).
    MemDisambiguation,
    /// No capable issue port was free.
    Ports,
}

/// FLOPS-stack blame for the oldest waiting vector-FP instruction
/// (paper Table III lines 14–18).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlopsBlame {
    /// Its producer is a memory load.
    Memory,
    /// Its producer is another computation.
    Depend,
}

/// One micro-op that started execution this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssuedInfo {
    /// The issued micro-op.
    pub uop: MicroOp,
    /// Whether it is a wrong-path micro-op.
    pub wrong_path: bool,
    /// Whether it occupies a vector port (VPU).
    pub on_vpu: bool,
}

/// Fetch-stage state for one cycle — the paper's "similar accounting can
/// be done at other stages (e.g., fetch and decode)" extension. Our
/// frontend models fetch and decode as one unit, so this view covers both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchView {
    /// Micro-ops fetched this cycle, wrong path included.
    pub n_total: u32,
    /// Correct-path micro-ops fetched (the accounting `n`).
    pub n_correct: u32,
    /// Why fetch produced nothing (I-cache miss, wrong path/refill,
    /// microcode sequencing).
    pub fe_stall: Option<FrontendStall>,
    /// Fetch was throttled by a full frontend queue (downstream
    /// back-pressure); `head_blame` then names the backend cause.
    pub backpressure: bool,
    /// Blame for the ROB head (valid when `backpressure`).
    pub head_blame: Option<Blame>,
}

/// Dispatch-stage state for one cycle (paper Table II, dispatch column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchView {
    /// Micro-ops dispatched this cycle, wrong path included.
    pub n_total: u32,
    /// Correct-path micro-ops dispatched this cycle (the algorithm's `n`).
    pub n_correct: u32,
    /// Dispatch stopped because the ROB, RS or a load/store queue was full.
    pub backend_blocked: bool,
    /// Dispatch was ready but the shared slots were consumed by another SMT
    /// thread (always `false` on a single-thread core).
    pub smt_blocked: bool,
    /// Blame for the ROB head (valid when `backend_blocked`).
    pub head_blame: Option<Blame>,
    /// Why the frontend delivered nothing (valid when it did not).
    pub fe_stall: Option<FrontendStall>,
}

/// Issue-stage state for one cycle (paper Table II issue column and
/// Table III).
///
/// The engine derives these fields from its wakeup-driven scheduler
/// structures (per-thread partitions + a dispatch-stamp-ordered ready
/// queue), but the observable contract is fixed: micro-ops issue
/// oldest-first within a thread and in dispatch (round-robin) order
/// across threads, `rs_empty`/`vfp_in_rs` reflect the pre-issue RS
/// state, and `blocking_blame` names the oldest waiting micro-op the
/// issue scan reached whose dependences were not done.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueView<'a> {
    /// Micro-ops issued this cycle, wrong path included.
    pub n_total: u32,
    /// Correct-path micro-ops issued (the algorithm's `n`).
    pub n_correct: u32,
    /// No micro-ops were waiting in the reservation stations.
    pub rs_empty: bool,
    /// Frontend condition, inspected when `rs_empty`.
    pub fe_stall: Option<FrontendStall>,
    /// Blame for the producer of the first (oldest) non-ready instruction
    /// (the algorithm's `prod(first non-ready instr)`).
    pub blocking_blame: Option<Blame>,
    /// Ready instructions existed but could not issue (structural stall);
    /// reported only when it actually limited this cycle's issue.
    pub structural: Option<StructuralStall>,
    /// Ready instructions existed but the issue ports were taken by another
    /// SMT thread this cycle (always `false` on a single-thread core).
    pub smt_blocked: bool,
    /// Everything that started execution this cycle.
    pub issued: &'a [IssuedInfo],
    /// Whether any vector-FP micro-op is waiting in the RS
    /// (Table III line 9: "`if no VFP insts in RS`").
    pub vfp_in_rs: bool,
    /// Blame for the producer of the oldest waiting VFP micro-op
    /// (Table III lines 14–18).
    pub vfp_blame: Option<FlopsBlame>,
    /// A vector unit was occupied by a non-VFP micro-op this cycle
    /// (Table III line 11).
    pub vu_used_by_non_vfp: bool,
}

/// Commit-stage state for one cycle (paper Table II, commit column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitView {
    /// Micro-ops committed this cycle (always correct-path).
    pub n: u32,
    /// The ROB was empty.
    pub rob_empty: bool,
    /// The head was done but the shared commit slots went to another SMT
    /// thread (always `false` on a single-thread core).
    pub smt_blocked: bool,
    /// Frontend condition, inspected when `rob_empty`.
    pub fe_stall: Option<FrontendStall>,
    /// Blame for the unfinished ROB head (when the ROB is non-empty and the
    /// head is not done).
    pub head_blame: Option<Blame>,
}

/// End-of-cycle structural snapshot for one hardware thread, published only
/// when an attached observer asks for it ([`StageObserver::wants_cycle_end`]).
/// This is the raw material for the audit subsystem's occupancy and
/// commit-order invariants; the per-stage views above stay lean because the
/// accounting hot path never pays for this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleEndView {
    /// Entries in this thread's reorder buffer.
    pub rob_len: usize,
    /// Reorder-buffer capacity.
    pub rob_cap: usize,
    /// Reservation-station entries owned by this thread.
    pub rs_own: usize,
    /// Reservation-station entries across all threads (shared structure).
    pub rs_total: usize,
    /// Reservation-station capacity (shared).
    pub rs_cap: usize,
    /// Loads in flight for this thread.
    pub ldq_len: usize,
    /// Load-queue capacity.
    pub ldq_cap: usize,
    /// Entries in this thread's store queue.
    pub stq_len: usize,
    /// Store-queue capacity.
    pub stq_cap: usize,
    /// Sequence number the next commit must carry (ROB head, or the next
    /// sequence to be allocated when the ROB is empty).
    pub next_commit_seq: u64,
    /// Correct-path micro-ops committed by this thread so far.
    pub committed: u64,
    /// Live-entry counts of the L1I/L1D/L2/L3 MSHR files (shared).
    pub mshr: [MshrOccupancy; 4],
}

/// Observer of per-cycle, per-stage pipeline state.
///
/// All methods default to no-ops so observers implement only what they
/// need. The blanket implementations for `()`, `&mut T` and tuples let
/// several accountants (dispatch CPI, issue CPI, commit CPI, FLOPS) attach
/// to one run.
pub trait StageObserver {
    /// Fetch-stage snapshot for `cycle` (the fetch/decode extension).
    fn on_fetch(&mut self, cycle: u64, view: &FetchView) {
        let _ = (cycle, view);
    }
    /// Dispatch-stage snapshot for `cycle`.
    fn on_dispatch(&mut self, cycle: u64, view: &DispatchView) {
        let _ = (cycle, view);
    }
    /// Issue-stage snapshot for `cycle`.
    fn on_issue(&mut self, cycle: u64, view: &IssueView<'_>) {
        let _ = (cycle, view);
    }
    /// Commit-stage snapshot for `cycle`.
    fn on_commit(&mut self, cycle: u64, view: &CommitView) {
        let _ = (cycle, view);
    }
    /// A micro-op entered the window (dispatched; wrong-path micro-ops
    /// included — hardware does not know the path yet). Branch dispatches
    /// open the speculative-counter windows of paper §III-B.
    fn on_dispatch_uop(&mut self, cycle: u64, uop: &MicroOp) {
        let _ = (cycle, uop);
    }
    /// A micro-op retired (used by speculative-counter schemes and FLOP
    /// totals).
    fn on_commit_uop(&mut self, cycle: u64, uop: &MicroOp) {
        let _ = (cycle, uop);
    }
    /// All micro-ops this observer's thread dispatched at `cycle`, in
    /// dispatch order — the batched form of
    /// [`StageObserver::on_dispatch_uop`]. The engine makes exactly one
    /// call per thread per cycle (and only when `uops` is non-empty), at
    /// the point in the stage sequence the last per-µop call occupied:
    /// after the thread's dispatch walk, before any stage view. The
    /// default loops over the per-µop hook, so an observer implementing
    /// only that sees an identical event sequence; accountants override
    /// this with a per-span form.
    fn on_dispatch_uops(&mut self, cycle: u64, uops: &[MicroOp]) {
        for uop in uops {
            self.on_dispatch_uop(cycle, uop);
        }
    }
    /// All micro-ops this observer's thread committed at `cycle`, in
    /// commit order — the batched form of
    /// [`StageObserver::on_commit_uop`], with the same one-call-per-
    /// thread-per-cycle contract and per-µop-loop default as
    /// [`StageObserver::on_dispatch_uops`].
    fn on_commit_uops(&mut self, cycle: u64, uops: &[MicroOp]) {
        for uop in uops {
            self.on_commit_uop(cycle, uop);
        }
    }
    /// `n_squashed` wrong-path micro-ops — `branches_squashed` of them
    /// branches — were flushed at `cycle`.
    fn on_squash(&mut self, cycle: u64, n_squashed: u64, branches_squashed: u64) {
        let _ = (cycle, n_squashed, branches_squashed);
    }
    /// Whether this observer needs [`StageObserver::on_cycle_end`]. The
    /// engine skips assembling the structural snapshot entirely when no
    /// attached observer wants it, so plain accounting runs pay nothing.
    fn wants_cycle_end(&self) -> bool {
        false
    }
    /// End-of-cycle structural snapshot for one thread (published after all
    /// stage hooks of `cycle`, only when [`StageObserver::wants_cycle_end`]).
    fn on_cycle_end(&mut self, cycle: u64, view: &CycleEndView) {
        let _ = (cycle, view);
    }
}

impl StageObserver for () {}

impl<T: StageObserver + ?Sized> StageObserver for &mut T {
    fn on_fetch(&mut self, cycle: u64, view: &FetchView) {
        (**self).on_fetch(cycle, view);
    }
    fn on_dispatch(&mut self, cycle: u64, view: &DispatchView) {
        (**self).on_dispatch(cycle, view);
    }
    fn on_issue(&mut self, cycle: u64, view: &IssueView<'_>) {
        (**self).on_issue(cycle, view);
    }
    fn on_commit(&mut self, cycle: u64, view: &CommitView) {
        (**self).on_commit(cycle, view);
    }
    fn on_dispatch_uop(&mut self, cycle: u64, uop: &MicroOp) {
        (**self).on_dispatch_uop(cycle, uop);
    }
    fn on_commit_uop(&mut self, cycle: u64, uop: &MicroOp) {
        (**self).on_commit_uop(cycle, uop);
    }
    fn on_dispatch_uops(&mut self, cycle: u64, uops: &[MicroOp]) {
        (**self).on_dispatch_uops(cycle, uops);
    }
    fn on_commit_uops(&mut self, cycle: u64, uops: &[MicroOp]) {
        (**self).on_commit_uops(cycle, uops);
    }
    fn on_squash(&mut self, cycle: u64, n_squashed: u64, branches_squashed: u64) {
        (**self).on_squash(cycle, n_squashed, branches_squashed);
    }
    fn wants_cycle_end(&self) -> bool {
        (**self).wants_cycle_end()
    }
    fn on_cycle_end(&mut self, cycle: u64, view: &CycleEndView) {
        (**self).on_cycle_end(cycle, view);
    }
}

macro_rules! impl_observer_tuple {
    ($($name:ident),+) => {
        impl<$($name: StageObserver),+> StageObserver for ($($name,)+) {
            fn on_fetch(&mut self, cycle: u64, view: &FetchView) {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                $($name.on_fetch(cycle, view);)+
            }
            fn on_dispatch(&mut self, cycle: u64, view: &DispatchView) {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                $($name.on_dispatch(cycle, view);)+
            }
            fn on_issue(&mut self, cycle: u64, view: &IssueView<'_>) {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                $($name.on_issue(cycle, view);)+
            }
            fn on_commit(&mut self, cycle: u64, view: &CommitView) {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                $($name.on_commit(cycle, view);)+
            }
            fn on_dispatch_uop(&mut self, cycle: u64, uop: &MicroOp) {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                $($name.on_dispatch_uop(cycle, uop);)+
            }
            fn on_commit_uop(&mut self, cycle: u64, uop: &MicroOp) {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                $($name.on_commit_uop(cycle, uop);)+
            }
            fn on_dispatch_uops(&mut self, cycle: u64, uops: &[MicroOp]) {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                $($name.on_dispatch_uops(cycle, uops);)+
            }
            fn on_commit_uops(&mut self, cycle: u64, uops: &[MicroOp]) {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                $($name.on_commit_uops(cycle, uops);)+
            }
            fn on_squash(&mut self, cycle: u64, n_squashed: u64, branches_squashed: u64) {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                $($name.on_squash(cycle, n_squashed, branches_squashed);)+
            }
            fn wants_cycle_end(&self) -> bool {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                false $(|| $name.wants_cycle_end())+
            }
            fn on_cycle_end(&mut self, cycle: u64, view: &CycleEndView) {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                $($name.on_cycle_end(cycle, view);)+
            }
        }
    };
}

impl_observer_tuple!(A);
impl_observer_tuple!(A, B);
impl_observer_tuple!(A, B, C);
impl_observer_tuple!(A, B, C, D);
impl_observer_tuple!(A, B, C, D, E);

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Counter {
        dispatches: u64,
        commits: u64,
    }

    impl StageObserver for Counter {
        fn on_dispatch(&mut self, _c: u64, _v: &DispatchView) {
            self.dispatches += 1;
        }
        fn on_commit(&mut self, _c: u64, _v: &CommitView) {
            self.commits += 1;
        }
    }

    fn dview() -> DispatchView {
        DispatchView {
            n_total: 0,
            n_correct: 0,
            backend_blocked: false,
            smt_blocked: false,
            head_blame: None,
            fe_stall: None,
        }
    }

    #[test]
    fn tuple_fans_out() {
        let mut pair = (Counter::default(), Counter::default());
        pair.on_dispatch(0, &dview());
        pair.on_dispatch(1, &dview());
        assert_eq!(pair.0.dispatches, 2);
        assert_eq!(pair.1.dispatches, 2);
    }

    #[test]
    fn batched_span_default_loops_over_per_uop_hook() {
        struct PerUop {
            dispatched: Vec<u64>,
            committed: Vec<u64>,
        }
        impl StageObserver for PerUop {
            fn on_dispatch_uop(&mut self, _c: u64, uop: &MicroOp) {
                self.dispatched.push(uop.pc);
            }
            fn on_commit_uop(&mut self, _c: u64, uop: &MicroOp) {
                self.committed.push(uop.pc);
            }
        }
        let mut o = PerUop {
            dispatched: Vec::new(),
            committed: Vec::new(),
        };
        let uops: Vec<MicroOp> = (0..3)
            .map(|i| MicroOp::new(0x100 + i * 4, mstacks_model::UopKind::Nop))
            .collect();
        o.on_dispatch_uops(7, &uops);
        o.on_commit_uops(9, &uops[..2]);
        assert_eq!(o.dispatched, vec![0x100, 0x104, 0x108]);
        assert_eq!(o.committed, vec![0x100, 0x104]);
    }

    #[test]
    fn unit_observer_is_noop() {
        // Compiles and does nothing.
        ().on_dispatch(0, &dview());
        ().on_squash(0, 3, 1);
    }

    struct Auditorish(u64);

    impl StageObserver for Auditorish {
        fn wants_cycle_end(&self) -> bool {
            true
        }
        fn on_cycle_end(&mut self, _c: u64, _v: &CycleEndView) {
            self.0 += 1;
        }
    }

    #[test]
    fn cycle_end_opt_in_propagates_through_tuples() {
        let passive = (Counter::default(), Counter::default());
        assert!(!passive.wants_cycle_end());
        let mut mixed = (Counter::default(), Auditorish(0));
        assert!(mixed.wants_cycle_end());
        let view = CycleEndView {
            rob_len: 0,
            rob_cap: 224,
            rs_own: 0,
            rs_total: 0,
            rs_cap: 97,
            ldq_len: 0,
            ldq_cap: 72,
            stq_len: 0,
            stq_cap: 56,
            next_commit_seq: 0,
            committed: 0,
            mshr: [Default::default(); 4],
        };
        mixed.on_cycle_end(0, &view);
        mixed.on_cycle_end(1, &view);
        assert_eq!(mixed.1 .0, 2);
    }

    #[test]
    fn mut_ref_forwards() {
        let mut c = Counter::default();
        {
            let r = &mut c;
            r.on_commit(
                0,
                &CommitView {
                    n: 0,
                    rob_empty: true,
                    smt_blocked: false,
                    fe_stall: None,
                    head_blame: None,
                },
            );
        }
        assert_eq!(c.commits, 1);
    }
}
