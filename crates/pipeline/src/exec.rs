//! Execution-port allocation.
//!
//! One micro-op can start per port per cycle; unpipelined operations
//! (divides) additionally block their port until they complete. Structural
//! port stalls surface in the issue-stage CPI stack as the `Other`
//! component (paper §V-A).

use mstacks_model::{caps, AluClass, FpOpKind, PortSpec, UopKind, VecFpOp};

/// Resource class an op needs, as a [`caps`] bit.
pub fn cap_for(kind: &UopKind) -> u16 {
    match kind {
        UopKind::Nop => caps::INT_ALU,
        UopKind::IntAlu(AluClass::Add) | UopKind::IntAlu(AluClass::Lea) => caps::INT_ALU,
        UopKind::IntAlu(AluClass::Mul) => caps::INT_MUL,
        UopKind::IntAlu(AluClass::Div) => caps::INT_DIV,
        UopKind::Branch(_) => caps::BRANCH,
        UopKind::Load { .. } => caps::LOAD,
        UopKind::Store { .. } => caps::STORE,
        UopKind::ScalarFp(_) | UopKind::VecFp(_) => caps::VEC_FP,
        UopKind::VecInt => caps::VEC_INT,
    }
}

/// Whether this kind executes on a vector unit (for the FLOPS stack's
/// `non_vfp` component the VPU occupancy matters, not just VFP ops).
pub fn uses_vpu(kind: &UopKind) -> bool {
    matches!(
        kind,
        UopKind::ScalarFp(_) | UopKind::VecFp(_) | UopKind::VecInt
    )
}

/// Whether an op monopolizes its port for the whole latency.
pub fn unpipelined(kind: &UopKind) -> bool {
    matches!(
        kind,
        UopKind::IntAlu(AluClass::Div)
            | UopKind::ScalarFp(FpOpKind::Div)
            | UopKind::VecFp(VecFpOp {
                op: FpOpKind::Div,
                ..
            })
    )
}

#[derive(Debug, Clone, Copy)]
struct PortState {
    spec: PortSpec,
    busy_until: u64,
    used_this_cycle: bool,
}

/// The set of execution ports of one core.
///
/// # Example
///
/// ```
/// use mstacks_model::{caps, PortSpec, UopKind, AluClass};
/// use mstacks_pipeline::PortFile;
///
/// let mut ports = PortFile::new(&[PortSpec::new(caps::INT_ALU)]);
/// ports.begin_cycle(0);
/// let kind = UopKind::IntAlu(AluClass::Add);
/// assert!(ports.try_issue(&kind, 0, 1).is_some());
/// assert!(ports.try_issue(&kind, 0, 1).is_none()); // one op per port per cycle
/// ```
#[derive(Debug, Clone)]
pub struct PortFile {
    ports: Vec<PortState>,
    /// For each capability bit (indexed by its trailing-zero count), the
    /// ports that support it, in port order — so issue scans only the
    /// candidate ports while picking the same (lowest-index) port the full
    /// scan would.
    by_cap: [Vec<u8>; 16],
}

impl PortFile {
    /// Builds a port file from the configuration's port specs.
    pub fn new(specs: &[PortSpec]) -> Self {
        let mut by_cap: [Vec<u8>; 16] = Default::default();
        for (idx, spec) in specs.iter().enumerate() {
            for (bit, list) in by_cap.iter_mut().enumerate() {
                if spec.supports(1 << bit) {
                    list.push(idx as u8);
                }
            }
        }
        PortFile {
            ports: specs
                .iter()
                .map(|&spec| PortState {
                    spec,
                    busy_until: 0,
                    used_this_cycle: false,
                })
                .collect(),
            by_cap,
        }
    }

    /// Resets the per-cycle usage flags. Call once at the start of each
    /// issue stage.
    pub fn begin_cycle(&mut self, _now: u64) {
        for p in &mut self.ports {
            p.used_this_cycle = false;
        }
    }

    /// Tries to start an op of `kind` at `now` with execution latency
    /// `lat`. Returns the port index on success. Unpipelined ops block the
    /// port until completion.
    pub fn try_issue(&mut self, kind: &UopKind, now: u64, lat: u64) -> Option<usize> {
        let cap = cap_for(kind);
        let idx = self.by_cap[cap.trailing_zeros() as usize]
            .iter()
            .map(|&i| i as usize)
            .find(|&i| !self.ports[i].used_this_cycle && self.ports[i].busy_until <= now)?;
        let p = &mut self.ports[idx];
        p.used_this_cycle = true;
        if unpipelined(kind) {
            p.busy_until = now + lat;
        }
        Some(idx)
    }

    /// Whether a free, capable port exists for `kind` at `now` (without
    /// consuming it).
    pub fn could_issue(&self, kind: &UopKind) -> bool {
        let cap = cap_for(kind);
        self.by_cap[cap.trailing_zeros() as usize]
            .iter()
            .any(|&i| !self.ports[i as usize].used_this_cycle)
    }

    /// Whether port `idx` hosts a vector unit.
    pub fn is_vpu(&self, idx: usize) -> bool {
        self.ports[idx].spec.is_vpu()
    }

    /// Number of ports.
    pub fn len(&self) -> usize {
        self.ports.len()
    }

    /// `true` if the file has no ports (never the case for valid configs).
    pub fn is_empty(&self) -> bool {
        self.ports.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstacks_model::ElemType;

    fn alu() -> UopKind {
        UopKind::IntAlu(AluClass::Add)
    }

    #[test]
    fn one_op_per_port_per_cycle() {
        let mut pf = PortFile::new(&[PortSpec::new(caps::INT_ALU), PortSpec::new(caps::INT_ALU)]);
        pf.begin_cycle(0);
        assert!(pf.try_issue(&alu(), 0, 1).is_some());
        assert!(pf.try_issue(&alu(), 0, 1).is_some());
        assert!(pf.try_issue(&alu(), 0, 1).is_none());
        pf.begin_cycle(1);
        assert!(pf.try_issue(&alu(), 1, 1).is_some());
    }

    #[test]
    fn capability_mismatch_rejected() {
        let mut pf = PortFile::new(&[PortSpec::new(caps::LOAD)]);
        pf.begin_cycle(0);
        assert!(pf.try_issue(&alu(), 0, 1).is_none());
        assert!(pf.try_issue(&UopKind::Load { addr: 0 }, 0, 1).is_some());
    }

    #[test]
    fn unpipelined_blocks_port() {
        let mut pf = PortFile::new(&[PortSpec::new(caps::INT_DIV | caps::INT_ALU)]);
        let div = UopKind::IntAlu(AluClass::Div);
        pf.begin_cycle(0);
        assert!(pf.try_issue(&div, 0, 20).is_some());
        pf.begin_cycle(5);
        assert!(pf.try_issue(&alu(), 5, 1).is_none(), "port busy with div");
        pf.begin_cycle(20);
        assert!(pf.try_issue(&alu(), 20, 1).is_some());
    }

    #[test]
    fn pipelined_multi_cycle_does_not_block() {
        let mut pf = PortFile::new(&[PortSpec::new(caps::INT_MUL)]);
        let mul = UopKind::IntAlu(AluClass::Mul);
        pf.begin_cycle(0);
        assert!(pf.try_issue(&mul, 0, 3).is_some());
        pf.begin_cycle(1);
        assert!(pf.try_issue(&mul, 1, 3).is_some());
    }

    #[test]
    fn cap_for_vector_ops() {
        assert_eq!(
            cap_for(&UopKind::VecFp(VecFpOp::fma(16, ElemType::F32))),
            caps::VEC_FP
        );
        assert_eq!(cap_for(&UopKind::VecInt), caps::VEC_INT);
        assert!(uses_vpu(&UopKind::VecInt));
        assert!(!uses_vpu(&alu()));
    }

    #[test]
    fn vec_div_is_unpipelined() {
        let vdiv = UopKind::VecFp(VecFpOp {
            op: FpOpKind::Div,
            active_lanes: 8,
            elem: ElemType::F32,
        });
        assert!(unpipelined(&vdiv));
        assert!(!unpipelined(&UopKind::VecFp(VecFpOp::fma(
            8,
            ElemType::F32
        ))));
    }
}
