//! Execution-port allocation.
//!
//! One micro-op can start per port per cycle; unpipelined operations
//! (divides) additionally block their port until they complete. Structural
//! port stalls surface in the issue-stage CPI stack as the `Other`
//! component (paper §V-A).
//!
//! The port file is a consumer of the declarative machine description: it
//! is built from a [`ClassTable`] (the per-µop-class latency/port rows a
//! `.core` table carries, see `mstacks_model::coretab`), not from code
//! that knows about specific cores. Eligibility and pipelining are looked
//! up per [`UopClass`]; issue picks the lowest-indexed free eligible port,
//! which is exactly the declaration order of the table's `[ports]` line.

use mstacks_model::{caps, ClassTable, UopClass, UopKind};

/// Resource class an op needs, as a [`caps`] bit.
pub fn cap_for(kind: &UopKind) -> u16 {
    UopClass::of(kind).cap()
}

/// Whether this kind executes on a vector unit (for the FLOPS stack's
/// `non_vfp` component the VPU occupancy matters, not just VFP ops).
pub fn uses_vpu(kind: &UopKind) -> bool {
    matches!(cap_for(kind), caps::VEC_FP | caps::VEC_INT)
}

/// Whether an op monopolizes its port for the whole latency.
pub fn unpipelined(kind: &UopKind) -> bool {
    matches!(UopClass::of(kind), UopClass::IntDiv | UopClass::FpDiv)
}

#[derive(Debug, Clone, Copy)]
struct PortState {
    busy_until: u64,
    used_this_cycle: bool,
}

/// The set of execution ports of one core, with per-class eligibility.
///
/// # Example
///
/// ```
/// use mstacks_model::{caps, ClassTable, CoreConfig, PortSpec, UopKind, AluClass};
/// use mstacks_pipeline::PortFile;
///
/// let lat = CoreConfig::broadwell().lat;
/// let table = ClassTable::from_parts(&[PortSpec::new(caps::INT_ALU)], &lat);
/// let mut ports = PortFile::new(&table);
/// ports.begin_cycle(0);
/// let kind = UopKind::IntAlu(AluClass::Add);
/// assert!(ports.try_issue(&kind, 0, 1).is_some());
/// assert!(ports.try_issue(&kind, 0, 1).is_none()); // one op per port per cycle
/// ```
#[derive(Debug, Clone)]
pub struct PortFile {
    ports: Vec<PortState>,
    /// For each µop class, the eligible ports in ascending port order — so
    /// issue scans only the candidates while picking the same
    /// (lowest-index) port a full scan would.
    by_class: [Vec<u8>; UopClass::COUNT],
    /// Classes that monopolize their port for the whole latency.
    unpipelined: [bool; UopClass::COUNT],
    /// Ports hosting a vector FP unit (bit i set ⇒ port i is a VPU).
    vpu_mask: u32,
}

impl PortFile {
    /// Builds a port file from the core's class table.
    pub fn new(table: &ClassTable) -> Self {
        let mut by_class: [Vec<u8>; UopClass::COUNT] = Default::default();
        let mut unpipelined = [false; UopClass::COUNT];
        for (i, c) in mstacks_model::UOP_CLASSES.into_iter().enumerate() {
            let spec = table.spec(c);
            by_class[i] = spec.ports().map(|p| p as u8).collect();
            unpipelined[i] = !spec.pipelined;
        }
        PortFile {
            ports: vec![
                PortState {
                    busy_until: 0,
                    used_this_cycle: false,
                };
                table.n_ports()
            ],
            by_class,
            unpipelined,
            vpu_mask: table.vpu_mask(),
        }
    }

    /// Resets the per-cycle usage flags. Call once at the start of each
    /// issue stage.
    pub fn begin_cycle(&mut self, _now: u64) {
        for p in &mut self.ports {
            p.used_this_cycle = false;
        }
    }

    /// Tries to start an op of `kind` at `now` with execution latency
    /// `lat`. Returns the port index on success. Unpipelined ops block the
    /// port until completion.
    pub fn try_issue(&mut self, kind: &UopKind, now: u64, lat: u64) -> Option<usize> {
        let class = UopClass::of(kind).index();
        let idx = self.by_class[class]
            .iter()
            .map(|&i| i as usize)
            .find(|&i| !self.ports[i].used_this_cycle && self.ports[i].busy_until <= now)?;
        let p = &mut self.ports[idx];
        p.used_this_cycle = true;
        if self.unpipelined[class] {
            p.busy_until = now + lat;
        }
        Some(idx)
    }

    /// Whether a free, capable port exists for `kind` at `now` (without
    /// consuming it).
    pub fn could_issue(&self, kind: &UopKind) -> bool {
        self.by_class[UopClass::of(kind).index()]
            .iter()
            .any(|&i| !self.ports[i as usize].used_this_cycle)
    }

    /// Whether port `idx` hosts a vector unit.
    pub fn is_vpu(&self, idx: usize) -> bool {
        self.vpu_mask >> idx & 1 == 1
    }

    /// Number of ports.
    pub fn len(&self) -> usize {
        self.ports.len()
    }

    /// `true` if the file has no ports (never the case for valid configs).
    pub fn is_empty(&self) -> bool {
        self.ports.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstacks_model::{AluClass, CoreConfig, ElemType, FpOpKind, PortSpec, VecFpOp};

    fn alu() -> UopKind {
        UopKind::IntAlu(AluClass::Add)
    }

    /// Class table over the given port specs, with Broadwell latencies.
    fn table(specs: &[PortSpec]) -> ClassTable {
        ClassTable::from_parts(specs, &CoreConfig::broadwell().lat)
    }

    #[test]
    fn one_op_per_port_per_cycle() {
        let mut pf = PortFile::new(&table(&[
            PortSpec::new(caps::INT_ALU),
            PortSpec::new(caps::INT_ALU),
        ]));
        pf.begin_cycle(0);
        assert!(pf.try_issue(&alu(), 0, 1).is_some());
        assert!(pf.try_issue(&alu(), 0, 1).is_some());
        assert!(pf.try_issue(&alu(), 0, 1).is_none());
        pf.begin_cycle(1);
        assert!(pf.try_issue(&alu(), 1, 1).is_some());
    }

    #[test]
    fn capability_mismatch_rejected() {
        let mut pf = PortFile::new(&table(&[PortSpec::new(caps::LOAD)]));
        pf.begin_cycle(0);
        assert!(pf.try_issue(&alu(), 0, 1).is_none());
        assert!(pf.try_issue(&UopKind::Load { addr: 0 }, 0, 1).is_some());
    }

    #[test]
    fn unpipelined_blocks_port() {
        let mut pf = PortFile::new(&table(&[PortSpec::new(caps::INT_DIV | caps::INT_ALU)]));
        let div = UopKind::IntAlu(AluClass::Div);
        pf.begin_cycle(0);
        assert!(pf.try_issue(&div, 0, 20).is_some());
        pf.begin_cycle(5);
        assert!(pf.try_issue(&alu(), 5, 1).is_none(), "port busy with div");
        pf.begin_cycle(20);
        assert!(pf.try_issue(&alu(), 20, 1).is_some());
    }

    #[test]
    fn pipelined_multi_cycle_does_not_block() {
        let mut pf = PortFile::new(&table(&[PortSpec::new(caps::INT_MUL)]));
        let mul = UopKind::IntAlu(AluClass::Mul);
        pf.begin_cycle(0);
        assert!(pf.try_issue(&mul, 0, 3).is_some());
        pf.begin_cycle(1);
        assert!(pf.try_issue(&mul, 1, 3).is_some());
    }

    #[test]
    fn lowest_index_eligible_port_wins() {
        // Same tie-break as the pre-table engine: candidates are scanned
        // in table declaration order.
        let mut pf = PortFile::new(&table(&[
            PortSpec::new(caps::LOAD),
            PortSpec::new(caps::INT_ALU),
            PortSpec::new(caps::INT_ALU),
        ]));
        pf.begin_cycle(0);
        assert_eq!(pf.try_issue(&alu(), 0, 1), Some(1));
        assert_eq!(pf.try_issue(&alu(), 0, 1), Some(2));
    }

    #[test]
    fn cap_for_vector_ops() {
        assert_eq!(
            cap_for(&UopKind::VecFp(VecFpOp::fma(16, ElemType::F32))),
            caps::VEC_FP
        );
        assert_eq!(cap_for(&UopKind::VecInt), caps::VEC_INT);
        assert!(uses_vpu(&UopKind::VecInt));
        assert!(!uses_vpu(&alu()));
    }

    #[test]
    fn vpu_ports_follow_the_table() {
        let pf = PortFile::new(&table(&[
            PortSpec::new(caps::INT_ALU),
            PortSpec::new(caps::VEC_FP | caps::VEC_INT),
        ]));
        assert!(!pf.is_vpu(0));
        assert!(pf.is_vpu(1));
    }

    #[test]
    fn vec_div_is_unpipelined() {
        let vdiv = UopKind::VecFp(VecFpOp {
            op: FpOpKind::Div,
            active_lanes: 8,
            elem: ElemType::F32,
        });
        assert!(unpipelined(&vdiv));
        assert!(!unpipelined(&UopKind::VecFp(VecFpOp::fma(
            8,
            ElemType::F32
        ))));
    }
}
