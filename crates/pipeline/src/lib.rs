//! Cycle-level superscalar out-of-order core simulator.
//!
//! This crate is the substrate the ISPASS 2018 paper runs its accounting
//! on: a trace-driven, functional-first out-of-order pipeline with
//!
//! * a frontend ([`mstacks_frontend::FrontendUnit`]): I-cache-timed fetch,
//!   branch prediction with real wrong-path fetch, decode depth, microcode
//!   stalls;
//! * dispatch into a reorder buffer + unified reservation stations, with
//!   register renaming;
//! * an issue stage with execution ports, operation latencies, unpipelined
//!   dividers, conservative memory disambiguation and store-to-load
//!   forwarding;
//! * a memory hierarchy ([`mstacks_mem::Hierarchy`]) with MSHR and
//!   bandwidth contention;
//! * in-order commit.
//!
//! The paper's accounting (in `mstacks-core`) attaches through the
//! [`StageObserver`] trait: per cycle, each stage publishes exactly the
//! state the Table II / Table III algorithms inspect. Running with the unit
//! observer `()` gives the bare simulator — which is how the paper's
//! "negligible overhead" claim is benchmarked.
//!
//! # Example
//!
//! ```
//! use mstacks_model::{AluClass, ArchReg, CoreConfig, IdealFlags, MicroOp, UopKind};
//! use mstacks_pipeline::Core;
//!
//! let cfg = CoreConfig::broadwell();
//! let trace = (0..1000u64).map(|i| {
//!     MicroOp::new(0x1000 + (i % 64) * 4, UopKind::IntAlu(AluClass::Add))
//!         .with_dst(ArchReg::new((i % 16) as u16))
//! });
//! let mut core = Core::new(cfg, IdealFlags::none(), trace);
//! let result = core.run(&mut ()).expect("simulation completes");
//! assert_eq!(result.committed_uops, 1000);
//! assert!(result.cycles > 250); // 4-wide ⇒ at least 250 cycles
//! ```

pub mod core;
pub mod engine;
pub mod exec;
pub mod lsq;
pub mod observer;
pub mod prof;
pub mod result;
pub mod rob;
mod sched;
pub mod smt;

pub use crate::core::Core;
pub use engine::{Engine, WATCHDOG_CYCLES};
pub use exec::PortFile;
pub use lsq::StoreQueue;
pub use observer::{
    Blame, CommitView, CycleEndView, DispatchView, FetchView, FlopsBlame, IssueView, IssuedInfo,
    StageObserver, StructuralStall,
};
pub use prof::{stage_prof_reset, stage_prof_snapshot, STAGE_PROF_NAMES};
pub use result::{PipelineError, PipelineResult, PipelineStats, StallStage};
pub use rob::{Rob, SquashSummary};
pub use smt::SmtCore;
