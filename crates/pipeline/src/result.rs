//! Simulation results and errors.

use mstacks_frontend::fetch::FrontendStats;
use mstacks_mem::MemStats;

/// Aggregate pipeline statistics of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PipelineStats {
    /// Wrong-path micro-ops squashed.
    pub squashed_uops: u64,
    /// Branch redirects performed.
    pub redirects: u64,
    /// Total correct-path micro-ops issued.
    pub issued_uops: u64,
    /// Wrong-path micro-ops issued to execution ports.
    pub issued_wrong_path: u64,
    /// Cycles the dispatch stage was blocked by a full ROB/RS/STQ.
    pub dispatch_backend_blocked_cycles: u64,
    /// Loads that forwarded from the store queue.
    pub store_forwards: u64,
}

/// Result of a completed simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineResult {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Correct-path micro-ops committed.
    pub committed_uops: u64,
    /// Floating-point operations committed (vector FP only, FMA counts 2
    /// per lane — the FLOPS-stack definition).
    pub committed_flops: u64,
    /// Pipeline statistics.
    pub stats: PipelineStats,
    /// Frontend statistics.
    pub frontend: FrontendStats,
    /// Memory-hierarchy statistics.
    pub mem: MemStats,
}

impl PipelineResult {
    /// Cycles per committed micro-op.
    pub fn cpi(&self) -> f64 {
        if self.committed_uops == 0 {
            f64::NAN
        } else {
            self.cycles as f64 / self.committed_uops as f64
        }
    }

    /// Committed micro-ops per cycle.
    pub fn ipc(&self) -> f64 {
        1.0 / self.cpi()
    }

    /// Average floating-point operations per cycle.
    pub fn flops_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed_flops as f64 / self.cycles as f64
        }
    }
}

/// Errors a simulation run can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The pipeline made no forward progress for too long — a model bug or
    /// an impossible configuration. Contains the cycle the watchdog fired.
    Deadlock {
        /// Cycle at which the watchdog gave up.
        cycle: u64,
        /// Committed micro-ops at that point.
        committed: u64,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Deadlock { cycle, committed } => write!(
                f,
                "pipeline deadlock at cycle {cycle} after {committed} committed micro-ops"
            ),
        }
    }
}

impl std::error::Error for PipelineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpi_and_ipc() {
        let r = PipelineResult {
            cycles: 200,
            committed_uops: 100,
            committed_flops: 400,
            stats: PipelineStats::default(),
            frontend: FrontendStats::default(),
            mem: MemStats::default(),
        };
        assert!((r.cpi() - 2.0).abs() < 1e-12);
        assert!((r.ipc() - 0.5).abs() < 1e-12);
        assert!((r.flops_per_cycle() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_commits_is_nan_cpi() {
        let r = PipelineResult {
            cycles: 10,
            committed_uops: 0,
            committed_flops: 0,
            stats: PipelineStats::default(),
            frontend: FrontendStats::default(),
            mem: MemStats::default(),
        };
        assert!(r.cpi().is_nan());
    }

    #[test]
    fn error_display() {
        let e = PipelineError::Deadlock {
            cycle: 42,
            committed: 7,
        };
        assert!(e.to_string().contains("deadlock at cycle 42"));
    }
}
