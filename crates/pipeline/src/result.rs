//! Simulation results and errors.

use mstacks_frontend::fetch::FrontendStats;
use mstacks_mem::MemStats;

/// Aggregate pipeline statistics of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PipelineStats {
    /// Wrong-path micro-ops squashed.
    pub squashed_uops: u64,
    /// Branch redirects performed.
    pub redirects: u64,
    /// Total correct-path micro-ops issued.
    pub issued_uops: u64,
    /// Wrong-path micro-ops issued to execution ports.
    pub issued_wrong_path: u64,
    /// Cycles the dispatch stage was blocked by a full ROB/RS/STQ.
    pub dispatch_backend_blocked_cycles: u64,
    /// Loads that forwarded from the store queue.
    pub store_forwards: u64,
}

/// Result of a completed simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineResult {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Correct-path micro-ops committed.
    pub committed_uops: u64,
    /// Floating-point operations committed (vector FP only, FMA counts 2
    /// per lane — the FLOPS-stack definition).
    pub committed_flops: u64,
    /// Pipeline statistics.
    pub stats: PipelineStats,
    /// Frontend statistics.
    pub frontend: FrontendStats,
    /// Memory-hierarchy statistics.
    pub mem: MemStats,
}

impl PipelineResult {
    /// Cycles per committed micro-op.
    pub fn cpi(&self) -> f64 {
        if self.committed_uops == 0 {
            f64::NAN
        } else {
            self.cycles as f64 / self.committed_uops as f64
        }
    }

    /// Committed micro-ops per cycle.
    pub fn ipc(&self) -> f64 {
        1.0 / self.cpi()
    }

    /// Average floating-point operations per cycle.
    pub fn flops_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed_flops as f64 / self.cycles as f64
        }
    }
}

/// The pipeline stage a deadlocked hardware thread is stuck in, as
/// diagnosed by the watchdog (see `Engine::diagnose_stall`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallStage {
    /// The frontend cannot deliver micro-ops and the window is empty.
    Fetch,
    /// Fetched micro-ops are ready but cannot enter the window.
    Dispatch,
    /// The window head never issued (dependences or structural hazards).
    Issue,
    /// The window head issued but its execution never completes.
    Execute,
    /// The window head completed but cannot retire.
    Commit,
}

impl std::fmt::Display for StallStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StallStage::Fetch => write!(f, "fetch"),
            StallStage::Dispatch => write!(f, "dispatch"),
            StallStage::Issue => write!(f, "issue"),
            StallStage::Execute => write!(f, "execute"),
            StallStage::Commit => write!(f, "commit"),
        }
    }
}

/// Errors a simulation run can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The pipeline made no forward progress for too long — a model bug or
    /// an impossible configuration. Contains the cycle the watchdog fired
    /// plus the hardware thread and stage the stall was diagnosed in.
    Deadlock {
        /// Cycle at which the watchdog gave up.
        cycle: u64,
        /// Committed micro-ops (all threads) at that point.
        committed: u64,
        /// Hardware thread that stopped making progress.
        thread: usize,
        /// Stage the stalled thread is stuck in.
        stage: StallStage,
    },
    /// The audit subsystem found invariant violations (conservation leak,
    /// occupancy overflow, non-monotone commit order, …). The payload
    /// summarizes the first violation; the full structured report is
    /// available from the audited run API.
    Audit {
        /// Cycle of the first violation.
        cycle: u64,
        /// Hardware thread the first violation was observed on.
        thread: usize,
        /// Invariant family that tripped first (e.g. `"dispatch"`,
        /// `"occupancy"`).
        stage: String,
        /// Total violations recorded (reporting may have been truncated).
        violations: usize,
        /// Human-readable description of the first violation.
        detail: String,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Deadlock {
                cycle,
                committed,
                thread,
                stage,
            } => write!(
                f,
                "pipeline deadlock at cycle {cycle} after {committed} committed micro-ops \
                 (hardware thread {thread} stalled in the {stage} stage)"
            ),
            PipelineError::Audit {
                cycle,
                thread,
                stage,
                violations,
                detail,
            } => write!(
                f,
                "audit failed: {violations} invariant violation(s), first at cycle {cycle} \
                 on thread {thread} ({stage}): {detail}"
            ),
        }
    }
}

impl std::error::Error for PipelineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpi_and_ipc() {
        let r = PipelineResult {
            cycles: 200,
            committed_uops: 100,
            committed_flops: 400,
            stats: PipelineStats::default(),
            frontend: FrontendStats::default(),
            mem: MemStats::default(),
        };
        assert!((r.cpi() - 2.0).abs() < 1e-12);
        assert!((r.ipc() - 0.5).abs() < 1e-12);
        assert!((r.flops_per_cycle() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_commits_is_nan_cpi() {
        let r = PipelineResult {
            cycles: 10,
            committed_uops: 0,
            committed_flops: 0,
            stats: PipelineStats::default(),
            frontend: FrontendStats::default(),
            mem: MemStats::default(),
        };
        assert!(r.cpi().is_nan());
    }

    #[test]
    fn error_display() {
        let e = PipelineError::Deadlock {
            cycle: 42,
            committed: 7,
            thread: 1,
            stage: StallStage::Issue,
        };
        let msg = e.to_string();
        assert!(msg.contains("deadlock at cycle 42"));
        assert!(msg.contains("thread 1"));
        assert!(msg.contains("issue stage"));
    }

    #[test]
    fn audit_error_display() {
        let e = PipelineError::Audit {
            cycle: 128,
            thread: 0,
            stage: "dispatch".into(),
            violations: 3,
            detail: "cycle total 1.25 (expected 1 ± 1e-9)".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("3 invariant violation(s)"));
        assert!(msg.contains("cycle 128"));
        assert!(msg.contains("dispatch"));
    }

    #[test]
    fn stall_stage_display() {
        assert_eq!(StallStage::Fetch.to_string(), "fetch");
        assert_eq!(StallStage::Dispatch.to_string(), "dispatch");
        assert_eq!(StallStage::Issue.to_string(), "issue");
        assert_eq!(StallStage::Execute.to_string(), "execute");
        assert_eq!(StallStage::Commit.to_string(), "commit");
    }
}
