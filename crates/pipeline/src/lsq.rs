//! Load/store queue: memory disambiguation and store-to-load forwarding.
//!
//! The model is conservative (no speculative disambiguation): a load may
//! not issue until every older store has executed, i.e. has its address.
//! When an older executed store writes the load's address, the load
//! *forwards* from the store queue at L1 latency instead of accessing the
//! cache. Loads that are dependence-ready but disambiguation-blocked show
//! up in the issue CPI stack as the `MemConflict` structural component
//! ("predicted memory address conflicts", paper §III-A / §V-A).

use std::collections::VecDeque;

/// One in-flight store.
#[derive(Debug, Clone, Copy)]
pub struct StqEntry {
    /// Sequence number of the store micro-op.
    pub seq: u64,
    /// Byte address stored to.
    pub addr: u64,
    /// Whether the store has executed (address known, data forwardable).
    pub executed: bool,
}

/// The store queue (the load side needs no state beyond ROB entries, so
/// only stores are tracked).
#[derive(Debug, Clone, Default)]
pub struct StoreQueue {
    entries: VecDeque<StqEntry>,
    capacity: usize,
}

/// What the disambiguation check says about a load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadCheck {
    /// No older store conflicts: access the cache normally.
    Proceed,
    /// An older executed store covers the same address: forward from it.
    Forward,
    /// An older store's address is unknown: the load must wait.
    Blocked,
}

impl StoreQueue {
    /// Creates a store queue with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "store queue capacity must be non-zero");
        StoreQueue {
            entries: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Whether another store can dispatch.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Number of in-flight stores.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no stores are in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total entries the queue can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Allocates an entry at dispatch.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full (check [`StoreQueue::is_full`] first).
    pub fn push(&mut self, seq: u64, addr: u64) {
        assert!(!self.is_full(), "pushing into a full store queue");
        self.entries.push_back(StqEntry {
            seq,
            addr,
            executed: false,
        });
    }

    /// Marks a store as executed (address/data known). Entries are
    /// allocated in dispatch order and only ever removed from the front
    /// (retire) or back (squash), so the queue stays seq-sorted and the
    /// lookup can bisect.
    pub fn mark_executed(&mut self, seq: u64) {
        if let Ok(pos) = self.entries.binary_search_by(|e| e.seq.cmp(&seq)) {
            self.entries[pos].executed = true;
        }
    }

    /// Removes the store at commit. Commit retires stores oldest-first, so
    /// the match is the front entry; the bisect fallback keeps the method
    /// correct for out-of-order callers.
    pub fn retire(&mut self, seq: u64) {
        if self.entries.front().is_some_and(|e| e.seq == seq) {
            self.entries.pop_front();
        } else if let Ok(pos) = self.entries.binary_search_by(|e| e.seq.cmp(&seq)) {
            self.entries.remove(pos);
        }
    }

    /// Removes squashed stores (younger than `seq`).
    pub fn squash_younger_than(&mut self, seq: u64) {
        self.entries.retain(|e| e.seq <= seq);
    }

    /// Conservative disambiguation check for a load at `load_seq` reading
    /// `addr` (8-byte granularity for forwarding).
    pub fn check_load(&self, load_seq: u64, addr: u64) -> LoadCheck {
        let mut forward = false;
        for e in &self.entries {
            if e.seq >= load_seq {
                break; // seq-sorted: everything from here on is younger
            }
            if !e.executed {
                return LoadCheck::Blocked;
            }
            if e.addr >> 3 == addr >> 3 {
                forward = true; // youngest older match wins; keep scanning for blocks
            }
        }
        if forward {
            LoadCheck::Forward
        } else {
            LoadCheck::Proceed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_queue_lets_loads_proceed() {
        let q = StoreQueue::new(4);
        assert_eq!(q.check_load(10, 0x100), LoadCheck::Proceed);
    }

    #[test]
    fn unexecuted_older_store_blocks() {
        let mut q = StoreQueue::new(4);
        q.push(5, 0x100);
        assert_eq!(q.check_load(10, 0x200), LoadCheck::Blocked);
        q.mark_executed(5);
        assert_eq!(q.check_load(10, 0x200), LoadCheck::Proceed);
    }

    #[test]
    fn executed_matching_store_forwards() {
        let mut q = StoreQueue::new(4);
        q.push(5, 0x100);
        q.mark_executed(5);
        assert_eq!(q.check_load(10, 0x100), LoadCheck::Forward);
        assert_eq!(q.check_load(10, 0x104), LoadCheck::Forward); // same 8B word
        assert_eq!(q.check_load(10, 0x108), LoadCheck::Proceed);
    }

    #[test]
    fn younger_stores_do_not_affect_load() {
        let mut q = StoreQueue::new(4);
        q.push(20, 0x100); // younger than the load
        assert_eq!(q.check_load(10, 0x100), LoadCheck::Proceed);
    }

    #[test]
    fn retire_and_squash() {
        let mut q = StoreQueue::new(4);
        q.push(1, 0x100);
        q.push(2, 0x200);
        q.push(3, 0x300);
        q.retire(1);
        assert_eq!(q.len(), 2);
        q.squash_younger_than(2);
        assert_eq!(q.len(), 1);
        assert_eq!(q.check_load(10, 0x200), LoadCheck::Blocked); // store 2 unexecuted
    }

    #[test]
    fn capacity_enforced() {
        let mut q = StoreQueue::new(2);
        q.push(1, 0);
        q.push(2, 0);
        assert!(q.is_full());
    }

    #[test]
    #[should_panic(expected = "full store queue")]
    fn overfill_panics() {
        let mut q = StoreQueue::new(1);
        q.push(1, 0);
        q.push(2, 0);
    }
}
