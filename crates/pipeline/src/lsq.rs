//! Load/store queue: memory disambiguation and store-to-load forwarding.
//!
//! The model is conservative (no speculative disambiguation): a load may
//! not issue until every older store has executed, i.e. has its address.
//! When an older executed store writes the load's address, the load
//! *forwards* from the store queue at L1 latency instead of accessing the
//! cache. Loads that are dependence-ready but disambiguation-blocked show
//! up in the issue CPI stack as the `MemConflict` structural component
//! ("predicted memory address conflicts", paper §III-A / §V-A).
//!
//! Storage is columnar (parallel `seq` / `addr` / `executed` deques): the
//! per-issue [`StoreQueue::check_load`] scan walks the `executed` flags
//! and 8-byte-word addresses as dense same-type runs instead of striding
//! over 24-byte entry structs.

use std::collections::VecDeque;

/// The store queue (the load side needs no state beyond ROB entries, so
/// only stores are tracked). Entries are kept in dispatch (= sequence)
/// order across three parallel columns.
#[derive(Debug, Clone, Default)]
pub struct StoreQueue {
    /// Sequence number per in-flight store (ascending).
    seqs: VecDeque<u64>,
    /// Byte address stored to, per entry.
    addrs: VecDeque<u64>,
    /// Whether the store has executed (address known, data forwardable).
    executed: VecDeque<bool>,
    capacity: usize,
}

/// What the disambiguation check says about a load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadCheck {
    /// No older store conflicts: access the cache normally.
    Proceed,
    /// An older executed store covers the same address: forward from it.
    Forward,
    /// An older store's address is unknown: the load must wait.
    Blocked,
}

impl StoreQueue {
    /// Creates a store queue with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "store queue capacity must be non-zero");
        StoreQueue {
            seqs: VecDeque::with_capacity(capacity),
            addrs: VecDeque::with_capacity(capacity),
            executed: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Whether another store can dispatch.
    pub fn is_full(&self) -> bool {
        self.seqs.len() == self.capacity
    }

    /// Number of in-flight stores.
    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    /// `true` when no stores are in flight.
    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    /// Total entries the queue can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Allocates an entry at dispatch.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full (check [`StoreQueue::is_full`] first).
    pub fn push(&mut self, seq: u64, addr: u64) {
        assert!(!self.is_full(), "pushing into a full store queue");
        self.seqs.push_back(seq);
        self.addrs.push_back(addr);
        self.executed.push_back(false);
    }

    /// Marks a store as executed (address/data known). Entries are
    /// allocated in dispatch order and only ever removed from the front
    /// (retire) or back (squash), so the queue stays seq-sorted and the
    /// lookup can bisect.
    pub fn mark_executed(&mut self, seq: u64) {
        if let Ok(pos) = self.seqs.binary_search(&seq) {
            self.executed[pos] = true;
        }
    }

    /// Removes the store at commit. Commit retires stores oldest-first, so
    /// the match is the front entry; the bisect fallback keeps the method
    /// correct for out-of-order callers.
    pub fn retire(&mut self, seq: u64) {
        if self.seqs.front() == Some(&seq) {
            self.seqs.pop_front();
            self.addrs.pop_front();
            self.executed.pop_front();
        } else if let Ok(pos) = self.seqs.binary_search(&seq) {
            self.seqs.remove(pos);
            self.addrs.remove(pos);
            self.executed.remove(pos);
        }
    }

    /// Removes squashed stores (younger than `seq`).
    pub fn squash_younger_than(&mut self, seq: u64) {
        let keep = self.seqs.partition_point(|&s| s <= seq);
        self.seqs.truncate(keep);
        self.addrs.truncate(keep);
        self.executed.truncate(keep);
    }

    /// Conservative disambiguation check for a load at `load_seq` reading
    /// `addr` (8-byte granularity for forwarding).
    pub fn check_load(&self, load_seq: u64, addr: u64) -> LoadCheck {
        let mut forward = false;
        for ((&seq, &executed), &st_addr) in self.seqs.iter().zip(&self.executed).zip(&self.addrs) {
            if seq >= load_seq {
                break; // seq-sorted: everything from here on is younger
            }
            if !executed {
                return LoadCheck::Blocked;
            }
            if st_addr >> 3 == addr >> 3 {
                forward = true; // youngest older match wins; keep scanning for blocks
            }
        }
        if forward {
            LoadCheck::Forward
        } else {
            LoadCheck::Proceed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_queue_lets_loads_proceed() {
        let q = StoreQueue::new(4);
        assert_eq!(q.check_load(10, 0x100), LoadCheck::Proceed);
    }

    #[test]
    fn unexecuted_older_store_blocks() {
        let mut q = StoreQueue::new(4);
        q.push(5, 0x100);
        assert_eq!(q.check_load(10, 0x200), LoadCheck::Blocked);
        q.mark_executed(5);
        assert_eq!(q.check_load(10, 0x200), LoadCheck::Proceed);
    }

    #[test]
    fn executed_matching_store_forwards() {
        let mut q = StoreQueue::new(4);
        q.push(5, 0x100);
        q.mark_executed(5);
        assert_eq!(q.check_load(10, 0x100), LoadCheck::Forward);
        assert_eq!(q.check_load(10, 0x104), LoadCheck::Forward); // same 8B word
        assert_eq!(q.check_load(10, 0x108), LoadCheck::Proceed);
    }

    #[test]
    fn younger_stores_do_not_affect_load() {
        let mut q = StoreQueue::new(4);
        q.push(20, 0x100); // younger than the load
        assert_eq!(q.check_load(10, 0x100), LoadCheck::Proceed);
    }

    #[test]
    fn retire_and_squash() {
        let mut q = StoreQueue::new(4);
        q.push(1, 0x100);
        q.push(2, 0x200);
        q.push(3, 0x300);
        q.retire(1);
        assert_eq!(q.len(), 2);
        q.squash_younger_than(2);
        assert_eq!(q.len(), 1);
        assert_eq!(q.check_load(10, 0x200), LoadCheck::Blocked); // store 2 unexecuted
    }

    #[test]
    fn out_of_order_retire_keeps_columns_aligned() {
        // The bisect fallback must remove the same index from all three
        // columns, keeping seq→addr/executed associations intact.
        let mut q = StoreQueue::new(4);
        q.push(1, 0x100);
        q.push(2, 0x200);
        q.push(3, 0x300);
        q.mark_executed(1);
        q.mark_executed(3);
        q.retire(2); // middle removal
        assert_eq!(q.len(), 2);
        assert_eq!(q.check_load(10, 0x300), LoadCheck::Forward);
        assert_eq!(q.check_load(10, 0x200), LoadCheck::Proceed);
    }

    #[test]
    fn capacity_enforced() {
        let mut q = StoreQueue::new(2);
        q.push(1, 0);
        q.push(2, 0);
        assert!(q.is_full());
    }

    #[test]
    #[should_panic(expected = "full store queue")]
    fn overfill_panics() {
        let mut q = StoreQueue::new(1);
        q.push(1, 0);
        q.push(2, 0);
    }
}
