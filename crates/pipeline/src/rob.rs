//! Reorder buffer.
//!
//! The ROB holds every in-flight micro-op in program order, addressed by a
//! monotonically increasing sequence number. The accounting stages inspect
//! the head entry ("`i = ROB head`" in paper Table II), so [`Rob`] exposes
//! the head's blame classification directly ([`Rob::head_blame`]).
//!
//! Storage is a fixed ring over `capacity` slots with the physical slot of
//! sequence number `s` pinned at `s % capacity`. Live sequence numbers
//! span less than one capacity, so the mapping is injective, every
//! `seq -> entry` lookup is O(1), and — crucially for the scheduler's
//! producer→consumer wakeup lists — an entry keeps one stable
//! [`Rob::slot_of`] index for its whole lifetime.
//!
//! # Layout
//!
//! Each in-flight micro-op used to be one 144-byte `RobEntry` struct,
//! copied whole at dispatch and again at commit. The ring now stores
//! parallel columns: the fetched micro-op ([`Rob::fu`]) on one side, and
//! the small per-entry blame/timing fields (`issued` / `ready_at` /
//! `exec_lat` / `mem_level` / `interf` / `deps`) on the other. The
//! per-cycle consumers — head-done checks, producer-done probes, blame
//! classification — touch only the small columns; commit reads the head
//! micro-op in place and advances ([`Rob::drop_head`]) instead of popping
//! a 144-byte copy.

use crate::observer::Blame;
use mstacks_frontend::FetchedUop;

/// Sentinel for an unused dependence slot (no producer). Sequence
/// numbers never reach it: the window is bounded by the ROB capacity.
pub const NO_DEP: u64 = u64::MAX;
use mstacks_mem::HitLevel;
use mstacks_model::{MicroOp, UopKind};

/// What a branch-misprediction squash removed from the window, counted
/// while walking the squashed suffix once (so the engine can maintain its
/// load-queue occupancy and statistics incrementally instead of recounting
/// the surviving window).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SquashSummary {
    /// Micro-ops removed.
    pub uops: u64,
    /// Branch micro-ops among them.
    pub branches: u64,
    /// Load micro-ops among them.
    pub loads: u64,
}

/// The reorder buffer: a bounded, in-order window of in-flight micro-ops,
/// stored as parallel ring columns.
///
/// # Example
///
/// ```
/// use mstacks_pipeline::Rob;
/// let rob = Rob::new(192);
/// assert!(rob.is_empty());
/// assert_eq!(rob.next_seq(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct Rob {
    /// The fetched micro-op with its speculation flags, per ring slot.
    fu: Vec<FetchedUop>,
    /// Producer sequence numbers the micro-op waits on ([`NO_DEP`] marks
    /// an unused dependence slot), per ring slot.
    deps: Vec<[u64; 3]>,
    /// Whether execution has started, per ring slot.
    issued: Vec<bool>,
    /// Cycle the result is available (valid once issued), per ring slot.
    ready_at: Vec<u64>,
    /// Effective execution latency (valid once issued): memory latency for
    /// loads, port latency otherwise. Per ring slot.
    exec_lat: Vec<u64>,
    /// For loads: the deepest memory level the access touched.
    mem_level: Vec<Option<HitLevel>>,
    /// For loads in co-run mode: cycles of the access latency caused by
    /// another core's occupancy of the shared uncore (zero otherwise).
    /// The interference window is the *tail* of the access — the shared
    /// resource delayed completion from `ready_at - interf` to `ready_at`.
    interf: Vec<u64>,
    capacity: usize,
    /// Sequence number of the entry at the front (head) of the ROB.
    head_seq: u64,
    /// Number of live entries, `[head_seq, head_seq + len)`.
    len: usize,
}

impl Rob {
    /// Creates an empty ROB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ROB capacity must be non-zero");
        let vacant_fu = FetchedUop {
            uop: MicroOp::new(0, UopKind::Nop),
            wrong_path: false,
            mispredicted_branch: false,
            avail: 0,
            icache_miss: false,
        };
        Rob {
            fu: vec![vacant_fu; capacity],
            deps: vec![[NO_DEP; 3]; capacity],
            issued: vec![false; capacity],
            ready_at: vec![0; capacity],
            exec_lat: vec![0; capacity],
            mem_level: vec![None; capacity],
            interf: vec![0; capacity],
            capacity,
            head_seq: 0,
            len: 0,
        }
    }

    /// Whether no more micro-ops can be dispatched.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len == self.capacity
    }

    /// Whether the ROB holds no micro-ops.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// In-flight micro-op count.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// The physical ring slot of `seq` — stable for the whole lifetime of
    /// the entry, and unique among live entries.
    #[inline]
    pub fn slot_of(&self, seq: u64) -> usize {
        (seq % self.capacity as u64) as usize
    }

    /// Whether `seq` is currently in flight.
    #[inline]
    fn in_flight(&self, seq: u64) -> bool {
        seq >= self.head_seq && seq < self.head_seq + self.len as u64
    }

    /// The ring slot of `seq` if it is in flight.
    #[inline]
    fn slot_if_live(&self, seq: u64) -> Option<usize> {
        if self.in_flight(seq) {
            Some(self.slot_of(seq))
        } else {
            None
        }
    }

    /// Appends a dispatched micro-op; `seq` must be the next sequence
    /// number. The blame/timing columns reset to "not issued".
    ///
    /// # Panics
    ///
    /// Panics if the ROB is full or the sequence number is not contiguous.
    pub fn push(&mut self, fu: FetchedUop, seq: u64, deps: [u64; 3]) {
        assert!(!self.is_full(), "pushing into a full ROB");
        let expected = self.head_seq + self.len as u64;
        assert_eq!(seq, expected, "non-contiguous ROB sequence number");
        let slot = self.slot_of(seq);
        self.fu[slot] = fu;
        self.deps[slot] = deps;
        self.issued[slot] = false;
        self.ready_at[slot] = 0;
        self.exec_lat[slot] = 0;
        self.mem_level[slot] = None;
        self.interf[slot] = 0;
        self.len += 1;
    }

    /// The fetched micro-op at the head, if any.
    #[inline]
    pub fn head_fu(&self) -> Option<&FetchedUop> {
        if self.len == 0 {
            None
        } else {
            Some(&self.fu[self.slot_of(self.head_seq)])
        }
    }

    /// Whether the head entry exists and its result is available at `now`.
    #[inline]
    pub fn head_is_done(&self, now: u64) -> bool {
        if self.len == 0 {
            return false;
        }
        let s = self.slot_of(self.head_seq);
        self.issued[s] && self.ready_at[s] <= now
    }

    /// Whether the head entry exists and has started execution.
    #[inline]
    pub fn head_issued(&self) -> bool {
        self.len > 0 && self.issued[self.slot_of(self.head_seq)]
    }

    /// The Table II backend blame for the head entry (`None` when the ROB
    /// is empty or the head is done).
    #[inline]
    pub fn head_blame(&self, now: u64) -> Option<Blame> {
        if self.len == 0 {
            None
        } else {
            self.blame_of(self.head_seq, now)
        }
    }

    /// Advances past the head (commit). The caller must have checked the
    /// head is done; use [`Rob::head_fu`] to read it in place first.
    ///
    /// # Panics
    ///
    /// Debug-panics if the ROB is empty.
    #[inline]
    pub fn drop_head(&mut self) {
        debug_assert!(self.len > 0, "dropping the head of an empty ROB");
        self.head_seq += 1;
        self.len -= 1;
    }

    /// The fetched micro-op of an in-flight entry — O(1) via the ring
    /// index.
    #[inline]
    pub fn fu(&self, seq: u64) -> Option<&FetchedUop> {
        self.slot_if_live(seq).map(|s| &self.fu[s])
    }

    /// The dependence slots of an in-flight entry.
    #[inline]
    pub fn deps_of(&self, seq: u64) -> Option<&[u64; 3]> {
        self.slot_if_live(seq).map(|s| &self.deps[s])
    }

    /// Whether an in-flight entry has started execution (`None` when
    /// `seq` is not in flight).
    #[inline]
    pub fn issued(&self, seq: u64) -> Option<bool> {
        self.slot_if_live(seq).map(|s| self.issued[s])
    }

    /// The completion cycle of an in-flight, issued entry.
    #[inline]
    pub fn ready_at(&self, seq: u64) -> Option<u64> {
        self.slot_if_live(seq).map(|s| self.ready_at[s])
    }

    /// Records the execution start of `seq` at `now`, completing at
    /// `ready_at` (memory classification and co-run interference for
    /// loads).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not in flight.
    pub fn mark_issued(
        &mut self,
        seq: u64,
        now: u64,
        ready_at: u64,
        mem_level: Option<HitLevel>,
        interf: u64,
    ) {
        let s = self.slot_if_live(seq).expect("issued entry is in the ROB");
        self.issued[s] = true;
        self.ready_at[s] = ready_at;
        self.exec_lat[s] = ready_at - now;
        self.mem_level[s] = mem_level;
        self.interf[s] = interf;
    }

    /// Whether the producer with `seq` has its result available at `now`.
    /// Producers that already committed count as done.
    #[inline]
    pub fn producer_done(&self, seq: u64, now: u64) -> bool {
        match self.slot_if_live(seq) {
            Some(s) => self.issued[s] && self.ready_at[s] <= now,
            None => true, // committed (or never existed) → value available
        }
    }

    /// The Table II backend blame for an in-flight entry when it is not
    /// done: Dcache if it is a load that missed L1 (or `Interference` in
    /// the co-run tail window), long-latency if its execution takes more
    /// than one cycle, dependence otherwise (including not-yet-issued
    /// entries). `None` when done or not in flight.
    pub fn blame_of(&self, seq: u64, now: u64) -> Option<Blame> {
        let s = self.slot_if_live(seq)?;
        if self.issued[s] && self.ready_at[s] <= now {
            return None;
        }
        Some(if self.issued[s] {
            if self.mem_level[s].is_some_and(|l| l.beyond_l1()) {
                // The shared-uncore interference cycles sit at the tail of
                // the access: once `now` enters [ready_at - interf,
                // ready_at), the remaining wait exists only because of
                // another core's traffic.
                if self.interf[s] > 0 && now >= self.ready_at[s].saturating_sub(self.interf[s]) {
                    Blame::Interference
                } else {
                    Blame::Dcache(self.mem_level[s].unwrap_or(HitLevel::Mem))
                }
            } else if self.exec_lat[s] > 1 {
                Blame::LongLat
            } else {
                Blame::Depend
            }
        } else {
            Blame::Depend
        })
    }

    /// Removes every entry younger than `seq` (branch-misprediction
    /// squash), counting the removed micro-ops by category in one walk of
    /// the squashed suffix.
    ///
    /// # Contract
    ///
    /// `seq` must not be behind the commit head: a redirect can only come
    /// from an instruction that is still in flight (resolve runs before
    /// commit in the engine's cycle order), so `seq + 1 >= head_seq`
    /// always holds. A caller that violates this has lost track of the
    /// commit order — the old implementation silently kept zero entries
    /// via `saturating_sub`, masking the bug; now it panics.
    pub fn squash_younger_than(&mut self, seq: u64) -> SquashSummary {
        assert!(
            seq + 1 >= self.head_seq,
            "squash target seq {seq} is behind the commit head {} — \
             redirects must come from in-flight instructions",
            self.head_seq
        );
        let keep = ((seq + 1) - self.head_seq) as usize;
        let keep = keep.min(self.len);
        let mut summary = SquashSummary::default();
        for s in (self.head_seq + keep as u64)..(self.head_seq + self.len as u64) {
            let kind = &self.fu[self.slot_of(s)].uop.kind;
            summary.uops += 1;
            if kind.is_branch() {
                summary.branches += 1;
            }
            if kind.is_load() {
                summary.loads += 1;
            }
        }
        self.len = keep;
        summary
    }

    /// Iterates the in-flight micro-ops oldest → youngest as
    /// `(seq, fetched micro-op)` pairs.
    pub fn iter_fu(&self) -> impl Iterator<Item = (u64, &FetchedUop)> {
        (self.head_seq..self.head_seq + self.len as u64)
            .map(move |s| (s, &self.fu[self.slot_of(s)]))
    }

    /// Next sequence number to dispatch.
    #[inline]
    pub fn next_seq(&self) -> u64 {
        self.head_seq + self.len as u64
    }

    /// Total entries the ROB can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Sequence number the next commit must carry. Advances only in
    /// [`Rob::drop_head`] (squashes truncate the tail), so the audit
    /// subsystem checks commit-order monotonicity against it.
    #[inline]
    pub fn head_seq(&self) -> u64 {
        self.head_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstacks_model::{AluClass, MicroOp, UopKind};

    fn fu(seq: u64) -> FetchedUop {
        FetchedUop {
            uop: MicroOp::new(seq * 4, UopKind::IntAlu(AluClass::Add)),
            wrong_path: false,
            mispredicted_branch: false,
            avail: 0,
            icache_miss: false,
        }
    }

    fn push(rob: &mut Rob, seq: u64) {
        rob.push(fu(seq), seq, [NO_DEP; 3]);
    }

    #[test]
    fn push_pop_in_order() {
        let mut rob = Rob::new(4);
        for s in 0..4 {
            push(&mut rob, s);
        }
        assert!(rob.is_full());
        assert_eq!(rob.head_seq(), 0);
        rob.drop_head();
        assert_eq!(rob.head_seq(), 1);
        assert_eq!(rob.head_fu().unwrap().uop.pc, 4);
        assert_eq!(rob.next_seq(), 4);
    }

    #[test]
    fn ring_wraps_across_many_windows() {
        // Push/pop far past the capacity: the ring must stay coherent and
        // keep O(1) lookups valid after dozens of wraps.
        let mut rob = Rob::new(3);
        for s in 0..100u64 {
            push(&mut rob, s);
            assert_eq!(rob.fu(s).unwrap().uop.pc, s * 4);
            assert_eq!(rob.head_seq(), s);
            rob.drop_head();
        }
        assert!(rob.is_empty());
        assert_eq!(rob.next_seq(), 100);
    }

    #[test]
    fn slot_of_is_stable_and_unique_among_live_entries() {
        let mut rob = Rob::new(4);
        for s in 0..4 {
            push(&mut rob, s);
        }
        let slots: Vec<usize> = (0..4).map(|s| rob.slot_of(s)).collect();
        let mut sorted = slots.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "live slots must be unique: {slots:?}");
        // Slots do not move as the head advances.
        rob.drop_head();
        rob.drop_head();
        assert_eq!(rob.slot_of(2), slots[2]);
        assert_eq!(rob.slot_of(3), slots[3]);
    }

    #[test]
    #[should_panic(expected = "full ROB")]
    fn push_full_panics() {
        let mut rob = Rob::new(1);
        push(&mut rob, 0);
        push(&mut rob, 1);
    }

    #[test]
    #[should_panic(expected = "non-contiguous")]
    fn push_wrong_seq_panics() {
        let mut rob = Rob::new(4);
        push(&mut rob, 1);
    }

    #[test]
    fn get_by_seq_after_commits() {
        let mut rob = Rob::new(4);
        for s in 0..4 {
            push(&mut rob, s);
        }
        rob.drop_head();
        rob.drop_head();
        assert!(rob.fu(0).is_none());
        assert!(rob.fu(1).is_none());
        assert_eq!(rob.fu(2).unwrap().uop.pc, 8);
        assert_eq!(rob.fu(3).unwrap().uop.pc, 12);
        assert!(rob.fu(4).is_none());
    }

    #[test]
    fn producer_done_semantics() {
        let mut rob = Rob::new(4);
        push(&mut rob, 0);
        rob.mark_issued(0, 7, 10, None, 0);
        assert_eq!(rob.ready_at(0), Some(10));
        assert!(!rob.producer_done(0, 9));
        assert!(rob.producer_done(0, 10));
        // Committed producers are done.
        assert!(rob.producer_done(999, 0));
    }

    #[test]
    fn push_resets_blame_columns_of_a_reused_slot() {
        // A slot vacated by commit must not leak issued/timing state into
        // its next occupant (the ring reuses slots every `capacity` seqs).
        let mut rob = Rob::new(2);
        push(&mut rob, 0);
        rob.mark_issued(0, 0, 50, Some(HitLevel::Mem), 3);
        rob.drop_head();
        push(&mut rob, 1);
        push(&mut rob, 2); // same ring slot as seq 0
        assert_eq!(rob.issued(2), Some(false));
        assert_eq!(rob.blame_of(2, 0), Some(Blame::Depend));
    }

    #[test]
    fn squash_removes_younger() {
        let mut rob = Rob::new(8);
        for s in 0..6 {
            push(&mut rob, s);
        }
        let sq = rob.squash_younger_than(2);
        assert_eq!(sq.uops, 3);
        assert_eq!(sq.branches, 0); // the test entries are all ALU ops
        assert_eq!(sq.loads, 0);
        assert_eq!(rob.len(), 3);
        assert_eq!(rob.next_seq(), 3);
        // New pushes continue from seq 3.
        push(&mut rob, 3);
        assert_eq!(rob.len(), 4);
    }

    #[test]
    fn squash_counts_loads_and_branches() {
        let mut rob = Rob::new(8);
        push(&mut rob, 0);
        let mut ld = fu(1);
        ld.uop.kind = UopKind::Load { addr: 0x100 };
        rob.push(ld, 1, [NO_DEP; 3]);
        let mut br = fu(2);
        br.uop.kind = UopKind::Branch(mstacks_model::BranchInfo {
            taken: true,
            target: 0x40,
            fallthrough: 0xc,
            kind: mstacks_model::BranchKind::Cond,
        });
        rob.push(br, 2, [NO_DEP; 3]);
        let sq = rob.squash_younger_than(0);
        assert_eq!(
            sq,
            SquashSummary {
                uops: 2,
                branches: 1,
                loads: 1
            }
        );
    }

    #[test]
    fn squash_at_head_keeps_exactly_the_head() {
        // After the head has advanced, a redirect from the instruction at
        // the commit head must keep exactly that one entry.
        let mut rob = Rob::new(8);
        for s in 0..6 {
            push(&mut rob, s);
        }
        rob.drop_head();
        rob.drop_head();
        assert_eq!(rob.head_seq(), 2);
        let sq = rob.squash_younger_than(2);
        assert_eq!(sq.uops, 3);
        assert_eq!(rob.len(), 1);
        assert_eq!(rob.head_fu().unwrap().uop.pc, 8);
        assert_eq!(rob.next_seq(), 3);
    }

    #[test]
    #[should_panic(expected = "behind the commit head")]
    fn squash_behind_head_panics() {
        // A redirect from a seq that already committed is a caller bug:
        // it used to silently empty the window, now it traps.
        let mut rob = Rob::new(8);
        for s in 0..4 {
            push(&mut rob, s);
        }
        rob.drop_head();
        rob.drop_head();
        rob.drop_head(); // head_seq = 3
        let _ = rob.squash_younger_than(1);
    }

    #[test]
    fn blame_classification() {
        let now = 5;
        // Not issued → Depend.
        let mut rob = Rob::new(8);
        push(&mut rob, 0);
        assert_eq!(rob.blame_of(0, now), Some(Blame::Depend));
        assert_eq!(rob.head_blame(now), Some(Blame::Depend));
        // Issued long-latency → LongLat.
        rob.mark_issued(0, 12, 20, None, 0);
        assert_eq!(rob.blame_of(0, now), Some(Blame::LongLat));
        // Load that missed L1 → Dcache, tagged with the serving level.
        rob.mark_issued(0, 12, 20, Some(HitLevel::Mem), 0);
        assert_eq!(rob.blame_of(0, now), Some(Blame::Dcache(HitLevel::Mem)));
        // Issued 1-cycle op still in flight → Depend.
        rob.mark_issued(0, 5, 6, None, 0);
        assert_eq!(rob.blame_of(0, now), Some(Blame::Depend));
        // Done → no blame.
        rob.mark_issued(0, 4, 5, None, 0);
        assert_eq!(rob.blame_of(0, now), None);
        assert_eq!(rob.head_blame(now), None);
    }

    #[test]
    fn blame_interference_window_is_the_tail() {
        // Load serviced by DRAM, 4 of whose wait cycles were caused by a
        // co-running core: cycles [16, 20) blame interference, everything
        // earlier stays a plain Dcache miss.
        let mut rob = Rob::new(8);
        push(&mut rob, 0);
        rob.mark_issued(0, 0, 20, Some(HitLevel::Mem), 4);
        assert_eq!(rob.blame_of(0, 15), Some(Blame::Dcache(HitLevel::Mem)));
        assert_eq!(rob.blame_of(0, 16), Some(Blame::Interference));
        assert_eq!(rob.blame_of(0, 19), Some(Blame::Interference));
        assert_eq!(rob.blame_of(0, 20), None);
        // Zero interference never classifies as Interference.
        rob.mark_issued(0, 0, 20, Some(HitLevel::Mem), 0);
        assert_eq!(rob.blame_of(0, 19), Some(Blame::Dcache(HitLevel::Mem)));
    }
}
