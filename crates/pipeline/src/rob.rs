//! Reorder buffer.
//!
//! The ROB holds every in-flight micro-op in program order, addressed by a
//! monotonically increasing sequence number. The accounting stages inspect
//! the head entry ("`i = ROB head`" in paper Table II), so [`Rob`] exposes
//! the head's blame classification directly.
//!
//! Storage is a fixed ring over `capacity` slots with the physical slot of
//! sequence number `s` pinned at `s % capacity`. Live sequence numbers
//! span less than one capacity, so the mapping is injective, every
//! `seq -> entry` lookup is O(1), and — crucially for the scheduler's
//! producer→consumer wakeup lists — an entry keeps one stable
//! [`Rob::slot_of`] index for its whole lifetime.

use crate::observer::Blame;
use mstacks_frontend::FetchedUop;

/// Sentinel for an unused [`RobEntry::deps`] slot (no producer). Sequence
/// numbers never reach it: the window is bounded by the ROB capacity.
pub const NO_DEP: u64 = u64::MAX;
use mstacks_mem::HitLevel;
use mstacks_model::{MicroOp, UopKind};

/// One in-flight micro-op.
#[derive(Debug, Clone, Copy)]
pub struct RobEntry {
    /// The fetched micro-op with its speculation flags.
    pub fu: FetchedUop,
    /// Global sequence number (program order; wrong-path micro-ops are
    /// interleaved at the point they were fetched).
    pub seq: u64,
    /// Producer sequence numbers this micro-op still waits on
    /// ([`NO_DEP`] marks an unused dependence slot — packing the slots as
    /// plain `u64` keeps the entry 24 bytes slimmer than `Option<u64>`
    /// would, and the entry is copied on every dispatch).
    pub deps: [u64; 3],
    /// Whether execution has started.
    pub issued: bool,
    /// Cycle execution started (valid once `issued`).
    pub issued_at: u64,
    /// Cycle the result is available (valid once `issued`).
    pub ready_at: u64,
    /// Effective execution latency (valid once `issued`): memory latency
    /// for loads, port latency otherwise.
    pub exec_lat: u64,
    /// For loads: the deepest memory level the access touched.
    pub mem_level: Option<HitLevel>,
    /// For loads in co-run mode: cycles of the access latency caused by
    /// another core's occupancy of the shared uncore (zero otherwise).
    /// The interference window is the *tail* of the access — the shared
    /// resource delayed completion from `ready_at - interf` to `ready_at`.
    pub interf: u64,
}

impl RobEntry {
    /// Whether the result is available at `now`.
    #[inline]
    pub fn is_done(&self, now: u64) -> bool {
        self.issued && self.ready_at <= now
    }

    /// The Table II backend blame for this entry when it is not done:
    /// Dcache if it is a load that missed L1, long-latency if its execution
    /// takes more than one cycle, dependence otherwise (including
    /// not-yet-issued entries).
    pub fn blame(&self, now: u64) -> Option<Blame> {
        if self.is_done(now) {
            return None;
        }
        if self.issued {
            if self.mem_level_beyond_l1() {
                // The shared-uncore interference cycles sit at the tail of
                // the access: once `now` enters [ready_at - interf,
                // ready_at), the remaining wait exists only because of
                // another core's traffic.
                if self.interf > 0 && now >= self.ready_at.saturating_sub(self.interf) {
                    Some(Blame::Interference)
                } else {
                    Some(Blame::Dcache(self.mem_level.unwrap_or(HitLevel::Mem)))
                }
            } else if self.exec_lat > 1 {
                Some(Blame::LongLat)
            } else {
                Some(Blame::Depend)
            }
        } else {
            Some(Blame::Depend)
        }
    }

    #[inline]
    fn mem_level_beyond_l1(&self) -> bool {
        self.mem_level.is_some_and(|l| l.beyond_l1())
    }

    /// Placeholder for unoccupied ring slots.
    fn vacant() -> Self {
        RobEntry {
            fu: FetchedUop {
                uop: MicroOp::new(0, UopKind::Nop),
                wrong_path: false,
                mispredicted_branch: false,
                avail: 0,
                icache_miss: false,
            },
            seq: 0,
            deps: [NO_DEP; 3],
            issued: false,
            issued_at: 0,
            ready_at: 0,
            exec_lat: 0,
            mem_level: None,
            interf: 0,
        }
    }
}

/// What a branch-misprediction squash removed from the window, counted
/// while walking the squashed suffix once (so the engine can maintain its
/// load-queue occupancy and statistics incrementally instead of recounting
/// the surviving window).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SquashSummary {
    /// Micro-ops removed.
    pub uops: u64,
    /// Branch micro-ops among them.
    pub branches: u64,
    /// Load micro-ops among them.
    pub loads: u64,
}

/// The reorder buffer: a bounded, in-order window of in-flight micro-ops.
///
/// # Example
///
/// ```
/// use mstacks_pipeline::Rob;
/// let rob = Rob::new(192);
/// assert!(rob.is_empty());
/// assert_eq!(rob.next_seq(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct Rob {
    /// Ring storage; the entry with sequence number `s` lives in slot
    /// `s % capacity` while in flight.
    slots: Vec<RobEntry>,
    capacity: usize,
    /// Sequence number of the entry at the front (head) of the ROB.
    head_seq: u64,
    /// Number of live entries, `[head_seq, head_seq + len)`.
    len: usize,
}

impl Rob {
    /// Creates an empty ROB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ROB capacity must be non-zero");
        Rob {
            slots: vec![RobEntry::vacant(); capacity],
            capacity,
            head_seq: 0,
            len: 0,
        }
    }

    /// Whether no more micro-ops can be dispatched.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len == self.capacity
    }

    /// Whether the ROB holds no micro-ops.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// In-flight micro-op count.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// The physical ring slot of `seq` — stable for the whole lifetime of
    /// the entry, and unique among live entries.
    #[inline]
    pub fn slot_of(&self, seq: u64) -> usize {
        (seq % self.capacity as u64) as usize
    }

    /// The oldest in-flight micro-op.
    #[inline]
    pub fn head(&self) -> Option<&RobEntry> {
        if self.len == 0 {
            None
        } else {
            Some(&self.slots[self.slot_of(self.head_seq)])
        }
    }

    /// Appends a dispatched micro-op; its `seq` must be the next sequence
    /// number.
    ///
    /// # Panics
    ///
    /// Panics if the ROB is full or the sequence number is not contiguous.
    pub fn push(&mut self, entry: RobEntry) {
        assert!(!self.is_full(), "pushing into a full ROB");
        let expected = self.head_seq + self.len as u64;
        assert_eq!(entry.seq, expected, "non-contiguous ROB sequence number");
        let slot = self.slot_of(entry.seq);
        self.slots[slot] = entry;
        self.len += 1;
    }

    /// Pops the head (commit). The caller must have checked it is done.
    pub fn pop_head(&mut self) -> Option<RobEntry> {
        if self.len == 0 {
            return None;
        }
        let e = self.slots[self.slot_of(self.head_seq)];
        self.head_seq = e.seq + 1;
        self.len -= 1;
        Some(e)
    }

    /// Whether `seq` is currently in flight.
    #[inline]
    fn in_flight(&self, seq: u64) -> bool {
        seq >= self.head_seq && seq < self.head_seq + self.len as u64
    }

    /// Looks an in-flight micro-op up by sequence number — O(1) via the
    /// ring index.
    #[inline]
    pub fn get(&self, seq: u64) -> Option<&RobEntry> {
        if self.in_flight(seq) {
            Some(&self.slots[self.slot_of(seq)])
        } else {
            None
        }
    }

    /// Mutable lookup by sequence number — O(1) via the ring index.
    #[inline]
    pub fn get_mut(&mut self, seq: u64) -> Option<&mut RobEntry> {
        if self.in_flight(seq) {
            let slot = self.slot_of(seq);
            Some(&mut self.slots[slot])
        } else {
            None
        }
    }

    /// Whether the producer with `seq` has its result available at `now`.
    /// Producers that already committed count as done.
    #[inline]
    pub fn producer_done(&self, seq: u64, now: u64) -> bool {
        match self.get(seq) {
            Some(e) => e.is_done(now),
            None => true, // committed (or never existed) → value available
        }
    }

    /// Removes every entry younger than `seq` (branch-misprediction
    /// squash), counting the removed micro-ops by category in one walk of
    /// the squashed suffix.
    ///
    /// # Contract
    ///
    /// `seq` must not be behind the commit head: a redirect can only come
    /// from an instruction that is still in flight (resolve runs before
    /// commit in the engine's cycle order), so `seq + 1 >= head_seq`
    /// always holds. A caller that violates this has lost track of the
    /// commit order — the old implementation silently kept zero entries
    /// via `saturating_sub`, masking the bug; now it panics.
    pub fn squash_younger_than(&mut self, seq: u64) -> SquashSummary {
        assert!(
            seq + 1 >= self.head_seq,
            "squash target seq {seq} is behind the commit head {} — \
             redirects must come from in-flight instructions",
            self.head_seq
        );
        let keep = ((seq + 1) - self.head_seq) as usize;
        let keep = keep.min(self.len);
        let mut summary = SquashSummary::default();
        for s in (self.head_seq + keep as u64)..(self.head_seq + self.len as u64) {
            let kind = &self.slots[self.slot_of(s)].fu.uop.kind;
            summary.uops += 1;
            if kind.is_branch() {
                summary.branches += 1;
            }
            if kind.is_load() {
                summary.loads += 1;
            }
        }
        self.len = keep;
        summary
    }

    /// Iterates entries oldest → youngest.
    pub fn iter(&self) -> impl Iterator<Item = &RobEntry> {
        (self.head_seq..self.head_seq + self.len as u64).map(move |s| &self.slots[self.slot_of(s)])
    }

    /// Next sequence number to dispatch.
    #[inline]
    pub fn next_seq(&self) -> u64 {
        self.head_seq + self.len as u64
    }

    /// Total entries the ROB can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Sequence number the next commit must carry. Advances only in
    /// [`Rob::pop_head`] (squashes truncate the tail), so the audit
    /// subsystem checks commit-order monotonicity against it.
    #[inline]
    pub fn head_seq(&self) -> u64 {
        self.head_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstacks_model::{AluClass, MicroOp, UopKind};

    fn entry(seq: u64) -> RobEntry {
        RobEntry {
            fu: FetchedUop {
                uop: MicroOp::new(seq * 4, UopKind::IntAlu(AluClass::Add)),
                wrong_path: false,
                mispredicted_branch: false,
                avail: 0,
                icache_miss: false,
            },
            seq,
            deps: [NO_DEP; 3],
            issued: false,
            issued_at: 0,
            ready_at: 0,
            exec_lat: 0,
            mem_level: None,
            interf: 0,
        }
    }

    #[test]
    fn push_pop_in_order() {
        let mut rob = Rob::new(4);
        for s in 0..4 {
            rob.push(entry(s));
        }
        assert!(rob.is_full());
        assert_eq!(rob.pop_head().unwrap().seq, 0);
        assert_eq!(rob.head().unwrap().seq, 1);
        assert_eq!(rob.next_seq(), 4);
    }

    #[test]
    fn ring_wraps_across_many_windows() {
        // Push/pop far past the capacity: the ring must stay coherent and
        // keep O(1) lookups valid after dozens of wraps.
        let mut rob = Rob::new(3);
        for s in 0..100u64 {
            rob.push(entry(s));
            assert_eq!(rob.get(s).unwrap().seq, s);
            assert_eq!(rob.pop_head().unwrap().seq, s);
        }
        assert!(rob.is_empty());
        assert_eq!(rob.next_seq(), 100);
    }

    #[test]
    fn slot_of_is_stable_and_unique_among_live_entries() {
        let mut rob = Rob::new(4);
        for s in 0..4 {
            rob.push(entry(s));
        }
        let slots: Vec<usize> = (0..4).map(|s| rob.slot_of(s)).collect();
        let mut sorted = slots.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "live slots must be unique: {slots:?}");
        // Slots do not move as the head advances.
        rob.pop_head();
        rob.pop_head();
        assert_eq!(rob.slot_of(2), slots[2]);
        assert_eq!(rob.slot_of(3), slots[3]);
    }

    #[test]
    #[should_panic(expected = "full ROB")]
    fn push_full_panics() {
        let mut rob = Rob::new(1);
        rob.push(entry(0));
        rob.push(entry(1));
    }

    #[test]
    #[should_panic(expected = "non-contiguous")]
    fn push_wrong_seq_panics() {
        let mut rob = Rob::new(4);
        rob.push(entry(1));
    }

    #[test]
    fn get_by_seq_after_commits() {
        let mut rob = Rob::new(4);
        for s in 0..4 {
            rob.push(entry(s));
        }
        rob.pop_head();
        rob.pop_head();
        assert!(rob.get(0).is_none());
        assert!(rob.get(1).is_none());
        assert_eq!(rob.get(2).unwrap().seq, 2);
        assert_eq!(rob.get(3).unwrap().seq, 3);
        assert!(rob.get(4).is_none());
    }

    #[test]
    fn producer_done_semantics() {
        let mut rob = Rob::new(4);
        let mut e = entry(0);
        e.issued = true;
        e.ready_at = 10;
        e.exec_lat = 3;
        rob.push(e);
        assert!(!rob.producer_done(0, 9));
        assert!(rob.producer_done(0, 10));
        // Committed producers are done.
        assert!(rob.producer_done(999, 0));
    }

    #[test]
    fn squash_removes_younger() {
        let mut rob = Rob::new(8);
        for s in 0..6 {
            rob.push(entry(s));
        }
        let sq = rob.squash_younger_than(2);
        assert_eq!(sq.uops, 3);
        assert_eq!(sq.branches, 0); // the test entries are all ALU ops
        assert_eq!(sq.loads, 0);
        assert_eq!(rob.len(), 3);
        assert_eq!(rob.next_seq(), 3);
        // New pushes continue from seq 3.
        rob.push(entry(3));
        assert_eq!(rob.len(), 4);
    }

    #[test]
    fn squash_counts_loads_and_branches() {
        let mut rob = Rob::new(8);
        rob.push(entry(0));
        let mut ld = entry(1);
        ld.fu.uop.kind = UopKind::Load { addr: 0x100 };
        rob.push(ld);
        let mut br = entry(2);
        br.fu.uop.kind = UopKind::Branch(mstacks_model::BranchInfo {
            taken: true,
            target: 0x40,
            fallthrough: 0xc,
            kind: mstacks_model::BranchKind::Cond,
        });
        rob.push(br);
        let sq = rob.squash_younger_than(0);
        assert_eq!(
            sq,
            SquashSummary {
                uops: 2,
                branches: 1,
                loads: 1
            }
        );
    }

    #[test]
    fn squash_at_head_keeps_exactly_the_head() {
        // After the head has advanced, a redirect from the instruction at
        // the commit head must keep exactly that one entry.
        let mut rob = Rob::new(8);
        for s in 0..6 {
            rob.push(entry(s));
        }
        rob.pop_head();
        rob.pop_head();
        assert_eq!(rob.head_seq(), 2);
        let sq = rob.squash_younger_than(2);
        assert_eq!(sq.uops, 3);
        assert_eq!(rob.len(), 1);
        assert_eq!(rob.head().unwrap().seq, 2);
        assert_eq!(rob.next_seq(), 3);
    }

    #[test]
    #[should_panic(expected = "behind the commit head")]
    fn squash_behind_head_panics() {
        // A redirect from a seq that already committed is a caller bug:
        // it used to silently empty the window, now it traps.
        let mut rob = Rob::new(8);
        for s in 0..4 {
            rob.push(entry(s));
        }
        rob.pop_head();
        rob.pop_head();
        rob.pop_head(); // head_seq = 3
        let _ = rob.squash_younger_than(1);
    }

    #[test]
    fn blame_classification() {
        let now = 5;
        // Not issued → Depend.
        let e = entry(0);
        assert_eq!(e.blame(now), Some(Blame::Depend));
        // Issued long-latency → LongLat.
        let mut e = entry(0);
        e.issued = true;
        e.ready_at = 20;
        e.exec_lat = 8;
        assert_eq!(e.blame(now), Some(Blame::LongLat));
        // Load that missed L1 → Dcache, tagged with the serving level.
        e.mem_level = Some(HitLevel::Mem);
        assert_eq!(e.blame(now), Some(Blame::Dcache(HitLevel::Mem)));
        // Issued 1-cycle op still in flight → Depend.
        let mut e = entry(0);
        e.issued = true;
        e.ready_at = 6;
        e.exec_lat = 1;
        assert_eq!(e.blame(now), Some(Blame::Depend));
        // Done → no blame.
        let mut e = entry(0);
        e.issued = true;
        e.ready_at = 5;
        assert_eq!(e.blame(now), None);
    }

    #[test]
    fn blame_interference_window_is_the_tail() {
        // Load serviced by DRAM, 4 of whose wait cycles were caused by a
        // co-running core: cycles [16, 20) blame interference, everything
        // earlier stays a plain Dcache miss.
        let mut e = entry(0);
        e.issued = true;
        e.ready_at = 20;
        e.exec_lat = 20;
        e.mem_level = Some(HitLevel::Mem);
        e.interf = 4;
        assert_eq!(e.blame(15), Some(Blame::Dcache(HitLevel::Mem)));
        assert_eq!(e.blame(16), Some(Blame::Interference));
        assert_eq!(e.blame(19), Some(Blame::Interference));
        assert_eq!(e.blame(20), None);
        // Zero interference never classifies as Interference.
        e.interf = 0;
        assert_eq!(e.blame(19), Some(Blame::Dcache(HitLevel::Mem)));
    }
}
