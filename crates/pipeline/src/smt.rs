//! Simultaneous multithreading: several hardware threads sharing one
//! backend — the substrate for *per-thread* multi-stage CPI stacks, the
//! paper's §II extension of Eyerman & Eeckhout's ASPLOS'09 per-thread
//! cycle accounting ("their proposal could be easily extended to SMT CPI
//! stacks at other stages, in line with the algorithms described in
//! Section III").
//!
//! Sharing model (Intel-style):
//! * each thread has its own frontend, rename table, store queue, and a
//!   *partitioned* ROB (capacity / threads);
//! * the reservation stations, execution ports, all caches/TLBs and the
//!   DRAM channel are shared;
//! * fetch alternates between threads cycle by cycle (shared frontend
//!   bandwidth); dispatch and commit share their widths with per-cycle
//!   round-robin priority.
//!
//! Each thread gets its own [`StageObserver`]; cycles a thread loses to
//! the *other* thread's occupancy are flagged `smt_blocked` in its views,
//! which the accountants turn into the `Smt` CPI component.

#![allow(clippy::needless_range_loop)] // thread ids index parallel arrays

use crate::exec::PortFile;
use crate::lsq::{LoadCheck, StoreQueue};
use crate::observer::{
    Blame, CommitView, DispatchView, FetchView, FlopsBlame, IssueView, IssuedInfo,
    StageObserver, StructuralStall,
};
use crate::result::{PipelineError, PipelineResult, PipelineStats};
use crate::rob::{Rob, RobEntry};
use mstacks_frontend::FrontendUnit;
use mstacks_mem::{Hierarchy, HitLevel};
use mstacks_model::{ArchReg, CoreConfig, IdealFlags, MicroOp, UopKind};

const WATCHDOG_CYCLES: u64 = 200_000;

/// Per-thread state.
struct SmtThread<I> {
    frontend: FrontendUnit,
    trace: I,
    rob: Rob,
    stq: StoreQueue,
    ldq_count: usize,
    ldq_cap: usize,
    rename: Vec<Option<u64>>,
    pending_redirect: Option<(u64, u64)>,
    vfp_waiting: usize,
    committed: u64,
    committed_flops: u64,
    stats: PipelineStats,
    /// Cycle the thread drained (it stops being observed from then on).
    finished_at: Option<u64>,
}

/// An SMT core running one trace per hardware thread.
///
/// # Example
///
/// ```
/// use mstacks_model::{AluClass, ArchReg, CoreConfig, IdealFlags, MicroOp, UopKind};
/// use mstacks_pipeline::SmtCore;
///
/// let mk = |base: u64| {
///     (0..800u64)
///         .map(move |i| {
///             MicroOp::new(base + (i % 16) * 4, UopKind::IntAlu(AluClass::Add))
///                 .with_dst(ArchReg::new((i % 8) as u16))
///         })
///         .collect::<Vec<_>>()
///         .into_iter()
/// };
/// let mut core = SmtCore::new(
///     CoreConfig::broadwell(),
///     IdealFlags::none(),
///     vec![mk(0x1000), mk(0x9000)],
/// );
/// let mut observers = [(), ()]; // one per thread
/// let results = core.run(&mut observers).expect("runs");
/// assert_eq!(results.len(), 2);
/// assert_eq!(results[0].committed_uops, 800);
/// ```
pub struct SmtCore<I> {
    cfg: CoreConfig,
    mem: Hierarchy,
    threads: Vec<SmtThread<I>>,
    /// Shared reservation stations: `(thread, seq)` in dispatch order.
    rs: Vec<(usize, u64)>,
    ports: PortFile,
    cycle: u64,
}

impl<I> std::fmt::Debug for SmtCore<I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmtCore")
            .field("config", &self.cfg.name)
            .field("threads", &self.threads.len())
            .field("cycle", &self.cycle)
            .finish()
    }
}

impl<I: Iterator<Item = MicroOp>> SmtCore<I> {
    /// Builds an SMT core with one hardware thread per trace. The ROB,
    /// store queue and load queue are partitioned evenly.
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty or larger than 4, or if partitioning
    /// leaves a thread without resources.
    pub fn new(cfg: CoreConfig, ideal: IdealFlags, traces: Vec<I>) -> Self {
        let n = traces.len();
        assert!((1..=4).contains(&n), "1..=4 SMT threads supported");
        let rob_part = cfg.rob_size / n;
        let stq_part = (cfg.stq_size / n).max(1);
        let ldq_part = (cfg.ldq_size / n).max(1);
        assert!(rob_part > 0, "ROB partition too small");
        let mut mem = Hierarchy::new(&cfg.mem);
        mem.set_perfect_icache(ideal.perfect_icache);
        mem.set_perfect_dcache(ideal.perfect_dcache);
        let threads = traces
            .into_iter()
            .map(|trace| SmtThread {
                frontend: FrontendUnit::new(&cfg, ideal.perfect_bpred),
                trace,
                rob: Rob::new(rob_part),
                stq: StoreQueue::new(stq_part),
                ldq_count: 0,
                ldq_cap: ldq_part,
                rename: vec![None; ArchReg::COUNT],
                pending_redirect: None,
                vfp_waiting: 0,
                committed: 0,
                committed_flops: 0,
                stats: PipelineStats::default(),
                finished_at: None,
            })
            .collect();
        SmtCore {
            ports: PortFile::new(&cfg.ports),
            mem,
            threads,
            rs: Vec::with_capacity(cfg.rs_size),
            cycle: 0,
            cfg,
        }
    }

    fn thread_done(t: &SmtThread<I>) -> bool {
        t.frontend.is_drained() && t.rob.is_empty()
    }

    /// Runs all threads to completion; `obs[t]` observes thread `t`.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Deadlock`] if no thread commits for too
    /// long.
    ///
    /// # Panics
    ///
    /// Panics if `obs.len()` differs from the thread count.
    pub fn run<O: StageObserver>(
        &mut self,
        obs: &mut [O],
    ) -> Result<Vec<PipelineResult>, PipelineError> {
        assert_eq!(obs.len(), self.threads.len(), "one observer per thread");
        let mut last_progress = 0u64;
        let mut last_total = 0u64;
        while !self.threads.iter().all(Self::thread_done) {
            self.step(obs);
            let total: u64 = self.threads.iter().map(|t| t.committed).sum();
            if total != last_total {
                last_total = total;
                last_progress = self.cycle;
            } else if self.cycle - last_progress > WATCHDOG_CYCLES {
                return Err(PipelineError::Deadlock {
                    cycle: self.cycle,
                    committed: total,
                });
            }
        }
        Ok(self.results())
    }

    /// Per-thread result snapshots (cycles = the thread's drain time).
    pub fn results(&self) -> Vec<PipelineResult> {
        self.threads
            .iter()
            .map(|t| PipelineResult {
                cycles: t.finished_at.unwrap_or(self.cycle),
                committed_uops: t.committed,
                committed_flops: t.committed_flops,
                stats: t.stats,
                frontend: *t.frontend.stats(),
                mem: self.mem.stats_snapshot(),
            })
            .collect()
    }

    fn exec_latency(&self, kind: &UopKind, ideal_alu: bool) -> u64 {
        if ideal_alu && !kind.is_mem() {
            1
        } else {
            u64::from(self.cfg.lat.exec_latency(kind))
        }
    }

    /// Advances the shared pipeline by one cycle.
    pub fn step<O: StageObserver>(&mut self, obs: &mut [O]) {
        let now = self.cycle;
        self.do_resolve(now, obs);
        self.do_commit(now, obs);
        self.do_issue(now, obs);
        self.do_dispatch(now, obs);
        self.do_fetch(now, obs);
        for (tid, t) in self.threads.iter_mut().enumerate() {
            if t.finished_at.is_none() && t.frontend.is_drained() && t.rob.is_empty() {
                t.finished_at = Some(now + 1);
                let _ = tid;
            }
        }
        self.cycle += 1;
    }

    fn active(&self, tid: usize) -> bool {
        self.threads[tid].finished_at.is_none()
    }

    /// Round-robin thread order starting at `cycle % n`.
    fn rr_order(&self, now: u64) -> Vec<usize> {
        let n = self.threads.len();
        (0..n).map(|i| (now as usize + i) % n).collect()
    }

    fn do_resolve<O: StageObserver>(&mut self, now: u64, obs: &mut [O]) {
        for tid in 0..self.threads.len() {
            let Some((seq, at)) = self.threads[tid].pending_redirect else {
                continue;
            };
            if at > now {
                continue;
            }
            let t = &mut self.threads[tid];
            let (squashed, squashed_branches) = t.rob.squash_younger_than(seq);
            self.rs.retain(|&(rt, rs_seq)| rt != tid || rs_seq <= seq);
            t.stq.squash_younger_than(seq);
            t.ldq_count = t.rob.iter().filter(|e| e.fu.uop.kind.is_load()).count();
            t.rename.fill(None);
            let mut fresh = vec![None; ArchReg::COUNT];
            for e in t.rob.iter() {
                if let Some(d) = e.fu.uop.dst {
                    fresh[d.index()] = Some(e.seq);
                }
            }
            t.rename = fresh;
            t.frontend.redirect(now);
            t.stats.squashed_uops += squashed;
            t.stats.redirects += 1;
            t.pending_redirect = None;
            // Recount this thread's waiting VFP micro-ops.
            let rob = &t.rob;
            t.vfp_waiting = self
                .rs
                .iter()
                .filter(|&&(rt, s)| {
                    rt == tid && rob.get(s).is_some_and(|e| e.fu.uop.kind.is_vfp())
                })
                .count();
            obs[tid].on_squash(now, squashed, squashed_branches);
        }
    }

    fn do_commit<O: StageObserver>(&mut self, now: u64, obs: &mut [O]) {
        let mut budget = self.cfg.commit_width;
        let order = self.rr_order(now);
        let mut per_thread_n = vec![0u32; self.threads.len()];
        let mut head_ready_unserved = vec![false; self.threads.len()];
        for &tid in &order {
            if !self.active(tid) {
                continue;
            }
            loop {
                let t = &mut self.threads[tid];
                let Some(head) = t.rob.head() else { break };
                if !head.is_done(now) {
                    break;
                }
                if budget == 0 {
                    head_ready_unserved[tid] = true;
                    break;
                }
                let e = t.rob.pop_head().expect("head exists");
                debug_assert!(!e.fu.wrong_path);
                match e.fu.uop.kind {
                    UopKind::Store { .. } => t.stq.retire(e.seq),
                    UopKind::Load { .. } => t.ldq_count -= 1,
                    _ => {}
                }
                if let Some(d) = e.fu.uop.dst {
                    if t.rename[d.index()] == Some(e.seq) {
                        t.rename[d.index()] = None;
                    }
                }
                t.committed += 1;
                t.committed_flops += e.fu.uop.flops();
                obs[tid].on_commit_uop(now, &e.fu.uop);
                per_thread_n[tid] += 1;
                budget -= 1;
            }
        }
        for tid in 0..self.threads.len() {
            if !self.active(tid) {
                continue;
            }
            let t = &self.threads[tid];
            let view = CommitView {
                n: per_thread_n[tid],
                rob_empty: t.rob.is_empty(),
                smt_blocked: head_ready_unserved[tid],
                fe_stall: t.frontend.stall_reason(now),
                head_blame: t.rob.head().and_then(|h| h.blame(now)),
            };
            obs[tid].on_commit(now, &view);
        }
    }

    fn producer_blame(&self, tid: usize, e: &RobEntry, now: u64) -> Blame {
        let rob = &self.threads[tid].rob;
        for p in e.deps.iter().flatten() {
            if rob.producer_done(*p, now) {
                continue;
            }
            let Some(pe) = rob.get(*p) else { continue };
            if pe.issued {
                if pe.mem_level.is_some_and(|l| l.beyond_l1()) {
                    return Blame::Dcache(pe.mem_level.unwrap_or(HitLevel::Mem));
                }
                if pe.exec_lat > 1 {
                    return Blame::LongLat;
                }
            }
            return Blame::Depend;
        }
        Blame::Depend
    }

    fn vfp_blame(&self, tid: usize, now: u64) -> Option<FlopsBlame> {
        let rob = &self.threads[tid].rob;
        let seq = self
            .rs
            .iter()
            .filter(|&&(rt, _)| rt == tid)
            .map(|&(_, s)| s)
            .find(|&s| rob.get(s).is_some_and(|e| e.fu.uop.kind.is_vfp()))?;
        let e = rob.get(seq)?;
        for p in e.deps.iter().flatten() {
            if rob.producer_done(*p, now) {
                continue;
            }
            let Some(pe) = rob.get(*p) else { continue };
            return Some(if pe.fu.uop.kind.is_load() {
                FlopsBlame::Memory
            } else {
                FlopsBlame::Depend
            });
        }
        Some(FlopsBlame::Depend)
    }

    fn do_issue<O: StageObserver>(&mut self, now: u64, obs: &mut [O]) {
        self.ports.begin_cycle(now);
        let n_threads = self.threads.len();
        let mut issued_bufs: Vec<Vec<IssuedInfo>> = vec![Vec::new(); n_threads];
        let mut n_total = vec![0u32; n_threads];
        let mut n_correct = vec![0u32; n_threads];
        let mut blocking: Vec<Option<Blame>> = vec![None; n_threads];
        let mut structural: Vec<Option<StructuralStall>> = vec![None; n_threads];
        let mut port_blocked = vec![false; n_threads];
        let mut vu_non_vfp = vec![false; n_threads];
        let rs_empty: Vec<bool> = (0..n_threads)
            .map(|tid| !self.rs.iter().any(|&(rt, _)| rt == tid))
            .collect();
        let ideal_alu = false; // SMT runs use realistic latencies unless set below

        let mut budget = self.cfg.issue_width;
        let mut i = 0;
        while i < self.rs.len() && budget > 0 {
            let (tid, seq) = self.rs[i];
            let e = *self.threads[tid].rob.get(seq).expect("RS entry in ROB");
            let rob = &self.threads[tid].rob;
            let deps_ready = e.deps.iter().flatten().all(|&p| rob.producer_done(p, now));
            if !deps_ready {
                if blocking[tid].is_none() {
                    blocking[tid] = Some(self.producer_blame(tid, &e, now));
                }
                i += 1;
                continue;
            }
            let kind = e.fu.uop.kind;
            let mut forward = false;
            if let UopKind::Load { addr } = kind {
                match self.threads[tid].stq.check_load(seq, addr) {
                    LoadCheck::Blocked => {
                        structural[tid] =
                            structural[tid].or(Some(StructuralStall::MemDisambiguation));
                        i += 1;
                        continue;
                    }
                    LoadCheck::Forward => forward = true,
                    LoadCheck::Proceed => {}
                }
            }
            let base_lat = self.exec_latency(&kind, ideal_alu);
            let Some(port) = self.ports.try_issue(&kind, now, base_lat) else {
                structural[tid] = structural[tid].or(Some(StructuralStall::Ports));
                port_blocked[tid] = true;
                i += 1;
                continue;
            };
            let (ready_at, mem_level) = match kind {
                UopKind::Load { addr } => {
                    if forward {
                        self.threads[tid].stats.store_forwards += 1;
                        (now + u64::from(self.cfg.mem.l1d.latency), Some(HitLevel::L1))
                    } else {
                        let res = self.mem.load(addr, e.fu.uop.pc, now);
                        (res.ready, Some(res.level))
                    }
                }
                UopKind::Store { addr } => {
                    self.threads[tid].stq.mark_executed(seq);
                    let _ = self.mem.store(addr, e.fu.uop.pc, now);
                    (now + base_lat, None)
                }
                _ => (now + base_lat, None),
            };
            {
                let em = self.threads[tid].rob.get_mut(seq).expect("entry");
                em.issued = true;
                em.issued_at = now;
                em.ready_at = ready_at;
                em.exec_lat = ready_at - now;
                em.mem_level = mem_level;
            }
            if e.fu.mispredicted_branch && !e.fu.wrong_path {
                self.threads[tid].pending_redirect = Some((seq, ready_at));
            }
            let on_vpu = self.ports.is_vpu(port);
            if on_vpu && !kind.is_vfp() {
                vu_non_vfp[tid] = true;
            }
            if kind.is_vfp() {
                self.threads[tid].vfp_waiting -= 1;
            }
            issued_bufs[tid].push(IssuedInfo {
                uop: e.fu.uop,
                wrong_path: e.fu.wrong_path,
                on_vpu,
            });
            n_total[tid] += 1;
            if !e.fu.wrong_path {
                n_correct[tid] += 1;
            }
            self.rs.remove(i);
            budget -= 1;
        }

        let any_issued: u32 = n_total.iter().sum();
        for tid in 0..n_threads {
            if !self.active(tid) {
                continue;
            }
            // Port-blocked while other threads issued → SMT interference.
            let smt_blocked =
                n_total[tid] == 0 && port_blocked[tid] && any_issued > 0;
            if n_total[tid] >= self.cfg.issue_width {
                structural[tid] = None;
            }
            self.threads[tid].stats.issued_uops += u64::from(n_correct[tid]);
            self.threads[tid].stats.issued_wrong_path +=
                u64::from(n_total[tid] - n_correct[tid]);
            let vfp_blame = if self.threads[tid].vfp_waiting > 0 {
                self.vfp_blame(tid, now)
            } else {
                None
            };
            let view = IssueView {
                n_total: n_total[tid],
                n_correct: n_correct[tid],
                rs_empty: rs_empty[tid],
                fe_stall: self.threads[tid].frontend.stall_reason(now),
                blocking_blame: blocking[tid],
                structural: structural[tid],
                smt_blocked,
                issued: &issued_bufs[tid],
                vfp_in_rs: self.threads[tid].vfp_waiting > 0 || !issued_bufs[tid].is_empty(),
                vfp_blame,
                vu_used_by_non_vfp: vu_non_vfp[tid],
            };
            obs[tid].on_issue(now, &view);
        }
    }

    fn do_dispatch<O: StageObserver>(&mut self, now: u64, obs: &mut [O]) {
        let n_threads = self.threads.len();
        let mut budget = self.cfg.dispatch_width;
        let mut n_tot = vec![0u32; n_threads];
        let mut n_cor = vec![0u32; n_threads];
        let mut backend = vec![false; n_threads];
        let mut starved_by_smt = vec![false; n_threads];
        let mut supply_limited = vec![false; n_threads];
        let rs_cap = self.cfg.rs_size;

        for &tid in &self.rr_order(now) {
            if !self.active(tid) {
                continue;
            }
            loop {
                let rs_len = self.rs.len();
                let t = &mut self.threads[tid];
                let Some(f) = t.frontend.peek_ready(now) else {
                    supply_limited[tid] = true;
                    break;
                };
                if budget == 0 {
                    starved_by_smt[tid] = true;
                    break;
                }
                let kind = f.uop.kind;
                if t.rob.is_full() || rs_len >= rs_cap {
                    backend[tid] = true;
                    break;
                }
                if matches!(kind, UopKind::Store { .. }) && t.stq.is_full() {
                    backend[tid] = true;
                    break;
                }
                if matches!(kind, UopKind::Load { .. }) && t.ldq_count >= t.ldq_cap {
                    backend[tid] = true;
                    break;
                }
                let f = t.frontend.pop_ready(now).expect("peeked");
                let seq = t.rob.next_seq();
                let mut deps = [None; 3];
                for (slot, r) in f.uop.srcs().enumerate() {
                    deps[slot] = t.rename[r.index()];
                }
                match kind {
                    UopKind::Store { addr } => t.stq.push(seq, addr),
                    UopKind::Load { .. } => t.ldq_count += 1,
                    _ => {}
                }
                if let Some(d) = f.uop.dst {
                    t.rename[d.index()] = Some(seq);
                }
                t.rob.push(RobEntry {
                    fu: f,
                    seq,
                    deps,
                    issued: false,
                    issued_at: 0,
                    ready_at: 0,
                    exec_lat: 0,
                    mem_level: None,
                });
                if kind.is_vfp() {
                    t.vfp_waiting += 1;
                }
                self.rs.push((tid, seq));
                obs[tid].on_dispatch_uop(now, &f.uop);
                n_tot[tid] += 1;
                if !f.wrong_path {
                    n_cor[tid] += 1;
                }
                budget -= 1;
            }
        }

        for tid in 0..n_threads {
            if !self.active(tid) {
                continue;
            }
            let t = &self.threads[tid];
            if backend[tid] {
                // Structure full: distinguish own-occupancy (partitioned
                // ROB) from shared-RS pressure by the other thread.
                let own_rs = self.rs.iter().filter(|&&(rt, _)| rt == tid).count();
                if !t.rob.is_full() && self.rs.len() >= rs_cap && own_rs < rs_cap / 2 {
                    // The shared RS is full mostly with other threads' work.
                    backend[tid] = false;
                    starved_by_smt[tid] = true;
                }
            }
            // A thread whose frontend ran dry without any stall cause on a
            // multi-thread core is starved by the *shared fetch bandwidth*:
            // blame the co-runner (Eyerman & Eeckhout's shared-frontend
            // interference), not "other".
            let fe_stall = t.frontend.stall_reason(now);
            if n_threads > 1
                && supply_limited[tid]
                && fe_stall.is_none()
                && !t.frontend.is_drained()
                && n_tot[tid] < self.cfg.dispatch_width
                && !backend[tid]
            {
                starved_by_smt[tid] = true;
            }
            let view = DispatchView {
                n_total: n_tot[tid],
                n_correct: n_cor[tid],
                backend_blocked: backend[tid],
                smt_blocked: starved_by_smt[tid],
                head_blame: t.rob.head().and_then(|h| h.blame(now)),
                fe_stall,
            };
            obs[tid].on_dispatch(now, &view);
        }
    }

    fn do_fetch<O: StageObserver>(&mut self, now: u64, obs: &mut [O]) {
        // Fetch bandwidth alternates between threads (round-robin SMT
        // fetch); the off-turn thread reports an SMT-blocked fetch cycle.
        let n_threads = self.threads.len();
        let turn = (now as usize) % n_threads;
        for tid in 0..n_threads {
            if !self.active(tid) {
                continue;
            }
            if tid == turn {
                let t = &mut self.threads[tid];
                let fc = t.frontend.tick(now, &mut self.mem, &mut t.trace);
                let view = FetchView {
                    n_total: fc.n_total,
                    n_correct: fc.n_correct,
                    fe_stall: t.frontend.stall_reason(now),
                    backpressure: fc.backpressure,
                    head_blame: if fc.backpressure {
                        t.rob.head().and_then(|h| h.blame(now))
                    } else {
                        None
                    },
                };
                obs[tid].on_fetch(now, &view);
            } else {
                // No fetch slot this cycle: an SMT-shared-frontend stall.
                let t = &self.threads[tid];
                let view = FetchView {
                    n_total: 0,
                    n_correct: 0,
                    fe_stall: t.frontend.stall_reason(now),
                    backpressure: false,
                    head_blame: None,
                };
                obs[tid].on_fetch(now, &view);
            }
        }
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstacks_model::{AluClass, ArchReg};

    fn alu_trace(n: u64, pc_base: u64) -> impl Iterator<Item = MicroOp> {
        (0..n).map(move |i| {
            MicroOp::new(pc_base + (i % 16) * 4, UopKind::IntAlu(AluClass::Add))
                .with_dst(ArchReg::new((i % 8) as u16))
        })
    }

    fn bdw() -> CoreConfig {
        CoreConfig::broadwell()
    }

    fn ideal() -> IdealFlags {
        IdealFlags::none().with_perfect_icache().with_perfect_bpred()
    }

    #[test]
    fn two_threads_complete() {
        let mut core = SmtCore::new(
            bdw(),
            ideal(),
            vec![alu_trace(5_000, 0x1000), alu_trace(5_000, 0x9000)],
        );
        let mut obs = [(), ()];
        let results = core.run(&mut obs).expect("runs");
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].committed_uops, 5_000);
        assert_eq!(results[1].committed_uops, 5_000);
    }

    #[test]
    fn sharing_slows_each_thread_but_speeds_the_pair() {
        // Each thread alone: ~CPI 0.25 on independent adds. Two threads
        // sharing a 4-wide core: each gets roughly half the machine.
        let mut solo = crate::core::Core::new(bdw(), ideal(), alu_trace(10_000, 0x1000));
        let solo_cycles = solo.run(&mut ()).expect("runs").cycles;

        let mut smt = SmtCore::new(
            bdw(),
            ideal(),
            vec![alu_trace(10_000, 0x1000), alu_trace(10_000, 0x9000)],
        );
        let mut obs = [(), ()];
        let results = smt.run(&mut obs).expect("runs");
        let smt_cycles = results.iter().map(|r| r.cycles).max().expect("two threads");
        // Per-thread slowdown vs running alone…
        assert!(
            smt_cycles > solo_cycles,
            "SMT thread cannot be as fast as solo: {smt_cycles} vs {solo_cycles}"
        );
        // …but far better than serializing the two programs.
        assert!(
            smt_cycles < 2 * solo_cycles + solo_cycles / 2,
            "SMT must beat time-slicing: {smt_cycles} vs {}",
            2 * solo_cycles
        );
    }

    #[test]
    fn single_thread_smt_matches_core_behaviour_roughly() {
        let mut smt = SmtCore::new(bdw(), ideal(), vec![alu_trace(5_000, 0x1000)]);
        let mut obs = [()];
        let results = smt.run(&mut obs).expect("runs");
        assert_eq!(results[0].committed_uops, 5_000);
        // A single SMT thread still fetches only every cycle (n=1 → always
        // its turn), so throughput is core-like.
        let cpi = results[0].cycles as f64 / 5_000.0;
        assert!(cpi < 0.40, "solo SMT thread CPI {cpi} should be near 0.25");
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut smt = SmtCore::new(
                bdw(),
                IdealFlags::none(),
                vec![alu_trace(3_000, 0x1000), alu_trace(3_000, 0x9000)],
            );
            let mut obs = [(), ()];
            smt.run(&mut obs).expect("runs")
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "1..=4 SMT threads")]
    fn zero_threads_panics() {
        let _ = SmtCore::<std::vec::IntoIter<MicroOp>>::new(bdw(), IdealFlags::none(), vec![]);
    }
}
