//! Simultaneous multithreading: several hardware threads sharing one
//! backend — the substrate for *per-thread* multi-stage CPI stacks, the
//! paper's §II extension of Eyerman & Eeckhout's ASPLOS'09 per-thread
//! cycle accounting ("their proposal could be easily extended to SMT CPI
//! stacks at other stages, in line with the algorithms described in
//! Section III").
//!
//! [`SmtCore`] is a thin wrapper over the unified
//! [`Engine`](crate::Engine) — the sharing model (partitioned ROB/LDQ/STQ,
//! shared RS/ports/caches, round-robin fetch/dispatch/commit arbitration)
//! is documented there. The shared reservation stations are physically
//! per-thread partitions with one global dispatch-stamp-ordered ready
//! queue (see `pipeline::sched`); the *capacity* stays shared — dispatch
//! blocks on total RS occupancy — so the SMT contention behaviour is
//! exactly that of the historical unified RS vector.

use crate::engine::Engine;
use crate::observer::StageObserver;
use crate::result::{PipelineError, PipelineResult};
use mstacks_model::{CoreConfig, IdealFlags, MicroOp};

/// An SMT core running one trace per hardware thread.
///
/// # Example
///
/// ```
/// use mstacks_model::{AluClass, ArchReg, CoreConfig, IdealFlags, MicroOp, UopKind};
/// use mstacks_pipeline::SmtCore;
///
/// let mk = |base: u64| {
///     (0..800u64)
///         .map(move |i| {
///             MicroOp::new(base + (i % 16) * 4, UopKind::IntAlu(AluClass::Add))
///                 .with_dst(ArchReg::new((i % 8) as u16))
///         })
///         .collect::<Vec<_>>()
///         .into_iter()
/// };
/// let mut core = SmtCore::new(
///     CoreConfig::broadwell(),
///     IdealFlags::none(),
///     vec![mk(0x1000), mk(0x9000)],
/// );
/// let mut observers = [(), ()]; // one per thread
/// let results = core.run(&mut observers).expect("runs");
/// assert_eq!(results.len(), 2);
/// assert_eq!(results[0].committed_uops, 800);
/// ```
pub struct SmtCore<I> {
    engine: Engine<I>,
}

impl<I> std::fmt::Debug for SmtCore<I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmtCore")
            .field("config", &self.engine.config().name)
            .field("threads", &self.engine.n_threads())
            .field("cycle", &self.engine.cycle())
            .finish()
    }
}

impl<I: Iterator<Item = MicroOp>> SmtCore<I> {
    /// Builds an SMT core with one hardware thread per trace. The ROB,
    /// store queue and load queue are partitioned evenly.
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty or larger than 4, or if partitioning
    /// leaves a thread without resources.
    pub fn new(cfg: CoreConfig, ideal: IdealFlags, traces: Vec<I>) -> Self {
        SmtCore {
            engine: Engine::new(cfg, ideal, traces),
        }
    }

    /// Runs all threads to completion; `obs[t]` observes thread `t`.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Deadlock`] if no thread commits for too
    /// long.
    ///
    /// # Panics
    ///
    /// Panics if `obs.len()` differs from the thread count.
    pub fn run<O: StageObserver>(
        &mut self,
        obs: &mut [O],
    ) -> Result<Vec<PipelineResult>, PipelineError> {
        self.engine.run(obs)
    }

    /// Per-thread result snapshots (cycles = the thread's drain time).
    pub fn results(&self) -> Vec<PipelineResult> {
        self.engine.results()
    }

    /// Advances the shared pipeline by one cycle.
    ///
    /// # Panics
    ///
    /// Panics if `obs.len()` differs from the thread count.
    pub fn step<O: StageObserver>(&mut self, obs: &mut [O]) {
        self.engine.step(obs);
    }

    /// Number of hardware threads.
    pub fn n_threads(&self) -> usize {
        self.engine.n_threads()
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.engine.cycle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstacks_model::{AluClass, ArchReg, UopKind};

    fn alu_trace(n: u64, pc_base: u64) -> impl Iterator<Item = MicroOp> {
        (0..n).map(move |i| {
            MicroOp::new(pc_base + (i % 16) * 4, UopKind::IntAlu(AluClass::Add))
                .with_dst(ArchReg::new((i % 8) as u16))
        })
    }

    fn bdw() -> CoreConfig {
        CoreConfig::broadwell()
    }

    fn ideal() -> IdealFlags {
        IdealFlags::none()
            .with_perfect_icache()
            .with_perfect_bpred()
    }

    #[test]
    fn two_threads_complete() {
        let mut core = SmtCore::new(
            bdw(),
            ideal(),
            vec![alu_trace(5_000, 0x1000), alu_trace(5_000, 0x9000)],
        );
        let mut obs = [(), ()];
        let results = core.run(&mut obs).expect("runs");
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].committed_uops, 5_000);
        assert_eq!(results[1].committed_uops, 5_000);
    }

    #[test]
    fn sharing_slows_each_thread_but_speeds_the_pair() {
        // Each thread alone: ~CPI 0.25 on independent adds. Two threads
        // sharing a 4-wide core: each gets roughly half the machine.
        let mut solo = crate::core::Core::new(bdw(), ideal(), alu_trace(10_000, 0x1000));
        let solo_cycles = solo.run(&mut ()).expect("runs").cycles;

        let mut smt = SmtCore::new(
            bdw(),
            ideal(),
            vec![alu_trace(10_000, 0x1000), alu_trace(10_000, 0x9000)],
        );
        let mut obs = [(), ()];
        let results = smt.run(&mut obs).expect("runs");
        let smt_cycles = results.iter().map(|r| r.cycles).max().expect("two threads");
        // Per-thread slowdown vs running alone…
        assert!(
            smt_cycles > solo_cycles,
            "SMT thread cannot be as fast as solo: {smt_cycles} vs {solo_cycles}"
        );
        // …but far better than serializing the two programs.
        assert!(
            smt_cycles < 2 * solo_cycles + solo_cycles / 2,
            "SMT must beat time-slicing: {smt_cycles} vs {}",
            2 * solo_cycles
        );
    }

    #[test]
    fn single_thread_smt_matches_core_behaviour_roughly() {
        let mut smt = SmtCore::new(bdw(), ideal(), vec![alu_trace(5_000, 0x1000)]);
        let mut obs = [()];
        let results = smt.run(&mut obs).expect("runs");
        assert_eq!(results[0].committed_uops, 5_000);
        // A single SMT thread still fetches only every cycle (n=1 → always
        // its turn), so throughput is core-like.
        let cpi = results[0].cycles as f64 / 5_000.0;
        assert!(cpi < 0.40, "solo SMT thread CPI {cpi} should be near 0.25");
    }

    #[test]
    fn single_thread_smt_is_bit_identical_to_core() {
        // The unified engine's n=1 instantiation must be exactly the
        // single-core pipeline, not merely close.
        let mut solo = crate::core::Core::new(bdw(), IdealFlags::none(), alu_trace(5_000, 0x1000));
        let solo_result = solo.run(&mut ()).expect("runs");
        let mut smt = SmtCore::new(bdw(), IdealFlags::none(), vec![alu_trace(5_000, 0x1000)]);
        let mut obs = [()];
        let results = smt.run(&mut obs).expect("runs");
        assert_eq!(results[0], solo_result);
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut smt = SmtCore::new(
                bdw(),
                IdealFlags::none(),
                vec![alu_trace(3_000, 0x1000), alu_trace(3_000, 0x9000)],
            );
            let mut obs = [(), ()];
            smt.run(&mut obs).expect("runs")
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "1..=4 hardware threads")]
    fn zero_threads_panics() {
        let _ = SmtCore::<std::vec::IntoIter<MicroOp>>::new(bdw(), IdealFlags::none(), vec![]);
    }
}
