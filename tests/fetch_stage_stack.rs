//! The fetch/decode-stage CPI stack — the paper's "similar accounting can
//! be done at other stages" extension.

use mstacks::prelude::*;

#[test]
fn fetch_stack_obeys_the_accounting_invariants() {
    for w in [spec::mcf(), spec::cactus(), spec::povray()] {
        let r = Session::new(CoreConfig::broadwell())
            .run(w.trace(15_000))
            .expect("simulation completes");
        let fetch = r.multi.fetch.as_ref().expect("fetch stack present");
        assert_eq!(fetch.stage, Stage::Fetch);
        let cycles = r.result.cycles as f64;
        assert!(
            (fetch.total_cycles() - cycles).abs() < 1e-6,
            "{}: fetch stack sums to {} ≠ {}",
            w.name(),
            fetch.total_cycles(),
            cycles
        );
        // Base identical to the other stages (each correct-path micro-op is
        // fetched exactly once).
        let b = r.multi.commit.cycles_of(Component::Base);
        assert!(
            (fetch.cycles_of(Component::Base) - b).abs() < 1e-6,
            "{}: fetch base {} ≠ commit base {}",
            w.name(),
            fetch.cycles_of(Component::Base),
            b
        );
    }
}

#[test]
fn fetch_charges_icache_at_least_as_much_as_dispatch() {
    // The fetch stage stalls on the I-miss itself; dispatch only once the
    // frontend queue runs dry — so the fetch Icache component is the
    // largest of all stages.
    let r = Session::new(CoreConfig::broadwell())
        .run(spec::cactus().trace(20_000))
        .expect("simulation completes");
    let fetch = r.multi.fetch.as_ref().expect("fetch stack present");
    assert!(
        fetch.cpi_of(Component::Icache) + 1e-3 >= r.multi.dispatch.cpi_of(Component::Icache),
        "fetch icache {} < dispatch icache {}",
        fetch.cpi_of(Component::Icache),
        r.multi.dispatch.cpi_of(Component::Icache)
    );
}

#[test]
fn fetch_backend_components_are_smallest() {
    // Backend stalls reach the fetch stage last (only via queue
    // back-pressure), so its Dcache component is the smallest.
    let r = Session::new(CoreConfig::broadwell())
        .run(spec::mcf().trace(20_000))
        .expect("simulation completes");
    let fetch = r.multi.fetch.as_ref().expect("fetch stack present");
    assert!(
        fetch.cpi_of(Component::Dcache) <= r.multi.commit.cpi_of(Component::Dcache) + 1e-3,
        "fetch dcache {} > commit dcache {}",
        fetch.cpi_of(Component::Dcache),
        r.multi.commit.cpi_of(Component::Dcache)
    );
}

#[test]
fn all_stacks_includes_fetch_first() {
    let r = Session::new(CoreConfig::knights_landing())
        .run(spec::exchange2().trace(10_000))
        .expect("simulation completes");
    let all = r.multi.all_stacks();
    assert_eq!(all.len(), 4);
    assert_eq!(all[0].stage, Stage::Fetch);
    assert_eq!(all[3].stage, Stage::Commit);
}
