//! Randomized workload tests: the accounting invariants must hold for *any*
//! workload the generator can produce, not just the tuned profiles.
//!
//! Originally `proptest` properties; now driven by the in-repo seeded PRNG
//! so the suite builds offline and explores a fixed, reproducible case set.

use mstacks::model::rng::SmallRng;
use mstacks::model::{AluClass, ArchReg, BranchInfo, BranchKind, MicroOp, UopKind};
use mstacks::prelude::*;
use mstacks::workloads::addr::AddrPattern;
use mstacks::workloads::synth::{Mix, SynthParams};

/// A bounded, always-valid random profile drawn from `rng`.
fn rand_params(rng: &mut SmallRng) -> SynthParams {
    let lo = rng.gen_range(1usize..8);
    let extra = rng.gen_range(0usize..8);
    SynthParams {
        name: "prop",
        seed: rng.gen_range(1u64..u64::MAX),
        n_blocks: rng.gen_range(2usize..40),
        block_len: (lo, lo + extra),
        ifootprint: 4096,
        loop_frac: rng.gen_range(0.0f64..0.6),
        random_frac: rng.gen_range(0.0f64..0.5),
        call_frac: rng.gen_range(0.0f64..0.2),
        indirect_frac: 0.05,
        taken_prob: rng.gen_range(0.05f64..0.95),
        loop_trip: (2, 8),
        mix: Mix {
            alu: 3.0,
            lea: 1.0,
            mul: 0.4,
            div: 0.05,
            load: 2.0,
            store: 1.0,
            fp_add: 0.5,
            fp_mul: 0.5,
            vec_fma: 0.2,
            vec_add: 0.1,
            vec_int: 0.1,
            nop: 0.2,
        },
        microcode_frac: rng.gen_range(0.0f64..0.2),
        ilp: rng.gen_range(1usize..6),
        fp_ilp: 2,
        load_dep_frac: rng.gen_range(0.0f64..0.9),
        branch_dep_frac: 0.3,
        mem: vec![
            (
                AddrPattern::Random {
                    bytes: rng.gen_range(1u64..1024) * 1024,
                },
                1.0,
            ),
            (
                AddrPattern::Stream {
                    bytes: 64 * 1024,
                    stride: 16,
                },
                0.5,
            ),
        ],
        vec_lanes: 8,
    }
}

#[test]
fn random_workloads_preserve_accounting_invariants() {
    let mut rng = SmallRng::seed_from_u64(0x1171);
    for case in 0..12 {
        let w = Workload::Synth(rand_params(&mut rng));
        let r = Session::new(CoreConfig::broadwell())
            .run(w.trace(4_000))
            .expect("simulation completes");
        assert_eq!(r.result.committed_uops, 4_000, "case {case}");
        let cycles = r.result.cycles as f64;
        for s in r.multi.stacks() {
            assert!(
                (s.total_cycles() - cycles).abs() < 1e-6,
                "case {case}: {} stack sums to {} ≠ {}",
                s.stage,
                s.total_cycles(),
                cycles
            );
            for (c, v) in s.iter_cpi() {
                assert!(v >= 0.0, "case {case}: negative {} at {}", c, s.stage);
            }
        }
        assert!(
            (r.flops.total_cycles() - cycles).abs() < 1e-6,
            "case {case}"
        );
        // Base equal across stages in ground-truth mode.
        let b = r.multi.commit.cycles_of(Component::Base);
        assert!(
            (r.multi.dispatch.cycles_of(Component::Base) - b).abs() < 1e-6,
            "case {case}"
        );
        assert!(
            (r.multi.issue.cycles_of(Component::Base) - b).abs() < 1e-6,
            "case {case}"
        );
    }
}

#[test]
fn random_workloads_are_deterministic() {
    let mut rng = SmallRng::seed_from_u64(0xDE7E);
    for case in 0..12 {
        let w = Workload::Synth(rand_params(&mut rng));
        let a = Session::new(CoreConfig::knights_landing())
            .run(w.trace(2_000))
            .expect("simulation completes");
        let b = Session::new(CoreConfig::knights_landing())
            .run(w.trace(2_000))
            .expect("simulation completes");
        assert_eq!(a, b, "case {case}");
    }
}

/// Hand-rolled adversarial traces (not via the generator).
fn raw_trace(seed: u64, n: usize) -> Vec<MicroOp> {
    let mut uops = Vec::with_capacity(n);
    let mut x = seed | 1;
    let mut rng = move || {
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    for i in 0..n {
        let pc = 0x1000 + (i as u64 % 128) * 4;
        let r = rng();
        let u = match r % 7 {
            0 => MicroOp::new(
                pc,
                UopKind::Load {
                    addr: r % (1 << 22),
                },
            )
            .with_dst(ArchReg::new((r % 16) as u16)),
            1 => MicroOp::new(
                pc,
                UopKind::Store {
                    addr: r % (1 << 22),
                },
            )
            .with_src(ArchReg::new((r % 16) as u16)),
            2 => {
                let taken = r & 1 == 0;
                MicroOp::new(
                    pc,
                    UopKind::Branch(BranchInfo {
                        taken,
                        target: 0x1000 + (r % 128) * 4,
                        fallthrough: pc + 4,
                        kind: BranchKind::Cond,
                    }),
                )
            }
            3 => MicroOp::new(pc, UopKind::IntAlu(AluClass::Div))
                .with_src(ArchReg::new((r % 16) as u16))
                .with_dst(ArchReg::new(((r >> 8) % 16) as u16)),
            _ => MicroOp::new(pc, UopKind::IntAlu(AluClass::Add))
                .with_src(ArchReg::new((r % 16) as u16))
                .with_dst(ArchReg::new(((r >> 8) % 16) as u16)),
        };
        uops.push(u);
    }
    uops
}

#[test]
fn adversarial_raw_traces_never_deadlock() {
    let mut seeds = SmallRng::seed_from_u64(0xADA5);
    for case in 0..8 {
        let seed = seeds.gen_range(1u64..u64::MAX);
        let trace = raw_trace(seed, 3_000);
        let r = Session::new(CoreConfig::broadwell())
            .run(trace.into_iter())
            .expect("no deadlock");
        assert_eq!(r.result.committed_uops, 3_000, "case {case} seed {seed}");
        let cycles = r.result.cycles as f64;
        for s in r.multi.stacks() {
            assert!(
                (s.total_cycles() - cycles).abs() < 1e-6,
                "case {case} seed {seed}"
            );
        }
    }
}
