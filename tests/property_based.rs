//! Property-based tests: the accounting invariants must hold for *any*
//! workload the generator can produce, not just the tuned profiles.

use mstacks::model::{AluClass, ArchReg, BranchInfo, BranchKind, MicroOp, UopKind};
use mstacks::prelude::*;
use mstacks::workloads::addr::AddrPattern;
use mstacks::workloads::synth::{Mix, SynthParams};
use proptest::prelude::*;

/// A bounded, always-valid random profile.
fn arb_params() -> impl Strategy<Value = SynthParams> {
    (
        1u64..u64::MAX,
        2usize..40,              // n_blocks
        1usize..8,               // block_len lo
        0usize..8,               // block_len extra
        0.0f64..0.6,             // loop_frac
        0.0f64..0.5,             // random_frac
        0.0f64..0.2,             // call_frac
        0.05f64..0.95,           // taken_prob
        1usize..6,               // ilp
        0.0f64..0.9,             // load_dep_frac
        0.0f64..0.2,             // microcode_frac
        1u64..1024,              // working set KiB
    )
        .prop_map(
            |(seed, n_blocks, lo, extra, loop_frac, random_frac, call_frac, taken_prob, ilp, load_dep_frac, microcode_frac, ws_kib)| {
                SynthParams {
                    name: "prop",
                    seed,
                    n_blocks,
                    block_len: (lo, lo + extra),
                    ifootprint: 4096,
                    loop_frac,
                    random_frac,
                    call_frac,
                    indirect_frac: 0.05,
                    taken_prob,
                    loop_trip: (2, 8),
                    mix: Mix {
                        alu: 3.0,
                        lea: 1.0,
                        mul: 0.4,
                        div: 0.05,
                        load: 2.0,
                        store: 1.0,
                        fp_add: 0.5,
                        fp_mul: 0.5,
                        vec_fma: 0.2,
                        vec_add: 0.1,
                        vec_int: 0.1,
                        nop: 0.2,
                    },
                    microcode_frac,
                    ilp,
                    fp_ilp: 2,
                    load_dep_frac,
                    branch_dep_frac: 0.3,
                    mem: vec![
                        (AddrPattern::Random { bytes: ws_kib * 1024 }, 1.0),
                        (AddrPattern::Stream { bytes: 64 * 1024, stride: 16 }, 0.5),
                    ],
                    vec_lanes: 8,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_workloads_preserve_accounting_invariants(params in arb_params()) {
        let w = Workload::Synth(params);
        let r = Simulation::new(CoreConfig::broadwell())
            .run(w.trace(4_000))
            .expect("simulation completes");
        prop_assert_eq!(r.result.committed_uops, 4_000);
        let cycles = r.result.cycles as f64;
        for s in r.multi.stacks() {
            prop_assert!((s.total_cycles() - cycles).abs() < 1e-6,
                "{} stack sums to {} ≠ {}", s.stage, s.total_cycles(), cycles);
            for (c, v) in s.iter_cpi() {
                prop_assert!(v >= 0.0, "negative {} at {}", c, s.stage);
            }
        }
        prop_assert!((r.flops.total_cycles() - cycles).abs() < 1e-6);
        // Base equal across stages in ground-truth mode.
        let b = r.multi.commit.cycles_of(Component::Base);
        prop_assert!((r.multi.dispatch.cycles_of(Component::Base) - b).abs() < 1e-6);
        prop_assert!((r.multi.issue.cycles_of(Component::Base) - b).abs() < 1e-6);
    }

    #[test]
    fn random_workloads_are_deterministic(params in arb_params()) {
        let w = Workload::Synth(params);
        let a = Simulation::new(CoreConfig::knights_landing())
            .run(w.trace(2_000)).expect("simulation completes");
        let b = Simulation::new(CoreConfig::knights_landing())
            .run(w.trace(2_000)).expect("simulation completes");
        prop_assert_eq!(a, b);
    }
}

/// Hand-rolled adversarial traces (not via the generator).
fn raw_trace(seed: u64, n: usize) -> Vec<MicroOp> {
    let mut uops = Vec::with_capacity(n);
    let mut x = seed | 1;
    let mut rng = move || {
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    for i in 0..n {
        let pc = 0x1000 + (i as u64 % 128) * 4;
        let r = rng();
        let u = match r % 7 {
            0 => MicroOp::new(pc, UopKind::Load { addr: r % (1 << 22) })
                .with_dst(ArchReg::new((r % 16) as u16)),
            1 => MicroOp::new(pc, UopKind::Store { addr: r % (1 << 22) })
                .with_src(ArchReg::new((r % 16) as u16)),
            2 => {
                let taken = r & 1 == 0;
                MicroOp::new(
                    pc,
                    UopKind::Branch(BranchInfo {
                        taken,
                        target: 0x1000 + (r % 128) * 4,
                        fallthrough: pc + 4,
                        kind: BranchKind::Cond,
                    }),
                )
            }
            3 => MicroOp::new(pc, UopKind::IntAlu(AluClass::Div))
                .with_src(ArchReg::new((r % 16) as u16))
                .with_dst(ArchReg::new(((r >> 8) % 16) as u16)),
            _ => MicroOp::new(pc, UopKind::IntAlu(AluClass::Add))
                .with_src(ArchReg::new((r % 16) as u16))
                .with_dst(ArchReg::new(((r >> 8) % 16) as u16)),
        };
        uops.push(u);
    }
    uops
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn adversarial_raw_traces_never_deadlock(seed in 1u64..u64::MAX) {
        let trace = raw_trace(seed, 3_000);
        let r = Simulation::new(CoreConfig::broadwell())
            .run(trace.into_iter())
            .expect("no deadlock");
        prop_assert_eq!(r.result.committed_uops, 3_000);
        let cycles = r.result.cycles as f64;
        for s in r.multi.stacks() {
            prop_assert!((s.total_cycles() - cycles).abs() < 1e-6);
        }
    }
}
