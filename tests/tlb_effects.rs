//! TLB behaviour: page walks fold into the Icache/Dcache components, as
//! the paper defines them ("cache (and TLB)", §III).

use mstacks::model::{ArchReg, MicroOp, TlbConfig, UopKind};
use mstacks::prelude::*;

/// Serialized loads striding one page at a time over 512 pages. The 512
/// touched lines fit the L1D (cache-wise everything hits after the first
/// pass), but 512 pages thrash a 64-entry D-TLB — so with real page walks
/// each load pays the walk, and with free walks it is an L1 hit. The
/// chain (each load addresses off the previous result) stops the
/// out-of-order window from hiding the walk latency.
fn page_strider(n: u64) -> impl Iterator<Item = MicroOp> {
    (0..n).map(|i| {
        // 512 pages = 2 MiB; the in-page offset varies so the 512 lines
        // spread across cache sets instead of aliasing into one.
        let page = i % 512;
        let addr = 0x4000_0000 + page * 4096 + (page % 64) * 64;
        MicroOp::new(0x1000 + (i % 32) * 4, UopKind::Load { addr })
            .with_src(ArchReg::new(1))
            .with_dst(ArchReg::new(1))
    })
}

#[test]
fn dtlb_misses_are_counted() {
    let r = Session::new(CoreConfig::broadwell())
        .run(page_strider(20_000))
        .expect("simulation completes");
    assert!(
        r.result.mem.dtlb_misses > 15_000,
        "page strider must thrash the 64-entry D-TLB: {}",
        r.result.mem.dtlb_misses
    );
    // …while the lines themselves become cache-resident.
    assert!(r.result.mem.l1d.miss_ratio() < 0.2);
}

#[test]
fn walks_fold_into_the_dcache_component() {
    // Same trace, same cache behaviour, one config with free page walks:
    // the CPI difference must appear in the Dcache component.
    let base_cfg = CoreConfig::broadwell();
    let mut free_cfg = CoreConfig::broadwell();
    free_cfg.mem.dtlb = TlbConfig::free();
    free_cfg.mem.itlb = TlbConfig::free();

    let with_walks = Session::new(base_cfg)
        .run(page_strider(20_000))
        .expect("simulation completes");
    let without = Session::new(free_cfg)
        .run(page_strider(20_000))
        .expect("simulation completes");
    assert!(
        with_walks.cpi() > without.cpi(),
        "page walks must cost cycles: {} vs {}",
        with_walks.cpi(),
        without.cpi()
    );
    let d_with = with_walks.multi.commit.cpi_of(Component::Dcache);
    let d_without = without.multi.commit.cpi_of(Component::Dcache);
    assert!(
        d_with > d_without,
        "the walk penalty must land in the Dcache component: {d_with} vs {d_without}"
    );
}

#[test]
fn dense_working_sets_rarely_miss_the_tlb() {
    // exchange2 runs in a 24 KiB working set — a handful of pages.
    let r = Session::new(CoreConfig::broadwell())
        .run(spec::exchange2().trace(20_000))
        .expect("simulation completes");
    let per_kilo = r.result.mem.dtlb_misses as f64 / 20.0;
    assert!(
        per_kilo < 5.0,
        "dense code must not thrash the TLB: {per_kilo} misses/kilo-uop"
    );
}

#[test]
fn itlb_misses_appear_with_huge_code_footprints() {
    // cactus touches ~130 KiB of code (> 32 pages): some I-TLB activity.
    let r = Session::new(CoreConfig::broadwell())
        .run(spec::cactus().trace(20_000))
        .expect("simulation completes");
    assert!(
        r.result.mem.itlb_misses > 0,
        "large code footprint must produce I-TLB misses"
    );
}
