//! FLOPS-stack behaviour on the DeepBench-like kernels (paper §V-B).

use mstacks::prelude::*;
use mstacks::workloads::{ConvPhase, GemmConfig, GemmStyle};

fn gemm(style: GemmStyle) -> Workload {
    Workload::Gemm {
        cfg: GemmConfig {
            m: 128,
            n: 220,
            k: 128,
            train: true,
        },
        style,
        lanes: 16,
    }
}

#[test]
fn knl_jit_style_is_memory_dominated() {
    // FMAs with memory operands wait on their loads: the FLOPS `memory`
    // component dominates even though almost everything hits the cache.
    let r = Session::new(CoreConfig::knights_landing())
        .run(gemm(GemmStyle::KnlJit).trace(30_000))
        .expect("simulation completes");
    let n = r.flops.normalized();
    let mem = n[FlopsComponent::Memory.index()];
    let dep = n[FlopsComponent::Depend.index()];
    assert!(
        mem > dep && mem > 0.3,
        "KNL-jit: memory {mem:.2} should dominate depend {dep:.2}"
    );
}

#[test]
fn skx_broadcast_style_shifts_to_depend() {
    // Register FMAs hanging off the broadcast: dependence component grows
    // at the expense of memory, relative to the jit style.
    let knl_style = Session::new(CoreConfig::skylake_server())
        .run(gemm(GemmStyle::KnlJit).trace(30_000))
        .expect("simulation completes");
    let skx_style = Session::new(CoreConfig::skylake_server())
        .run(gemm(GemmStyle::SkxBroadcast).trace(30_000))
        .expect("simulation completes");
    let dep_jit = knl_style.flops.normalized()[FlopsComponent::Depend.index()];
    let dep_bcast = skx_style.flops.normalized()[FlopsComponent::Depend.index()];
    assert!(
        dep_bcast > dep_jit,
        "broadcast codegen must show more dependence: {dep_bcast:.2} vs {dep_jit:.2}"
    );
}

#[test]
fn flops_base_below_cpi_base_share() {
    // Fig. 4's constant: normalized FLOPS base ≤ normalized CPI base
    // (not every pipeline slot is an FMA).
    for style in [GemmStyle::KnlJit, GemmStyle::SkxBroadcast] {
        let cfg = CoreConfig::knights_landing();
        let r = Session::new(cfg)
            .run(gemm(style).trace(30_000))
            .expect("simulation completes");
        let f = r.flops.normalized()[FlopsComponent::Base.index()];
        let c = r.multi.issue.normalized()[Component::Base.index()];
        assert!(
            f <= c + 0.02,
            "{style:?}: FLOPS base share {f:.2} should not exceed CPI base share {c:.2}"
        );
    }
}

#[test]
fn conv_has_lower_vfp_density_than_gemm() {
    let cfg = CoreConfig::skylake_server();
    let conv = Workload::Conv {
        cfg: mstacks::workloads::deepbench::conv_configs()[2],
        phase: ConvPhase::Forward,
        lanes: 16,
    };
    let rc = Session::new(cfg.clone())
        .run(conv.trace(30_000))
        .expect("simulation completes");
    let rg = Session::new(cfg)
        .run(gemm(GemmStyle::SkxBroadcast).trace(30_000))
        .expect("simulation completes");
    assert!(
        rc.flops.achieved_flops_per_cycle() < rg.flops.achieved_flops_per_cycle(),
        "conv ({:.1}) cannot out-FLOP gemm ({:.1})",
        rc.flops.achieved_flops_per_cycle(),
        rg.flops.achieved_flops_per_cycle()
    );
}

#[test]
fn perfect_dcache_migrates_flops_stalls() {
    // Fig. 5: with a perfect D-cache the memory component collapses and
    // frontend/depend grow.
    let cfg = CoreConfig::skylake_server();
    let conv = Workload::Conv {
        cfg: mstacks::workloads::deepbench::conv_configs()[2],
        phase: ConvPhase::Forward,
        lanes: 16,
    };
    let base = Session::new(cfg.clone())
        .run(conv.trace(30_000))
        .expect("simulation completes");
    let pd = Session::new(cfg)
        .with_ideal(IdealFlags::none().with_perfect_dcache())
        .run(conv.trace(30_000))
        .expect("simulation completes");
    let m0 = base.flops.normalized()[FlopsComponent::Memory.index()];
    let m1 = pd.flops.normalized()[FlopsComponent::Memory.index()];
    assert!(m1 < m0, "memory share must fall: {m0:.2} → {m1:.2}");
    assert!(
        pd.flops.achieved_flops_per_cycle() > base.flops.achieved_flops_per_cycle(),
        "FLOPS must improve with a perfect D-cache"
    );
}

#[test]
fn gflops_scale_with_frequency() {
    let r = Session::new(CoreConfig::knights_landing())
        .run(gemm(GemmStyle::KnlJit).trace(10_000))
        .expect("simulation completes");
    let g1 = r.flops.achieved_gflops(1.0);
    let g2 = r.flops.achieved_gflops(2.0);
    assert!((g2 - 2.0 * g1).abs() < 1e-9);
}

#[test]
fn lstm_tail_shows_non_fma_component() {
    use mstacks::workloads::{deepbench, RnnCell};
    // The recurrent gate tail (activations, elementwise ops) is non-FMA
    // vector FP: the FLOPS stack must show a non_fma component that plain
    // GEMM lacks.
    let cfg = CoreConfig::skylake_server();
    let rnn = Workload::Rnn {
        cfg: deepbench::rnn_configs()[0],
        cell: RnnCell::Lstm,
        lanes: 16,
    };
    let rr = Session::new(cfg.clone())
        .run(rnn.trace(30_000))
        .expect("simulation completes");
    let rg = Session::new(cfg)
        .run(gemm(GemmStyle::SkxBroadcast).trace(30_000))
        .expect("simulation completes");
    let nf_rnn = rr.flops.normalized()[FlopsComponent::NonFma.index()];
    let nf_gemm = rg.flops.normalized()[FlopsComponent::NonFma.index()];
    assert!(
        nf_rnn > nf_gemm + 0.01,
        "LSTM non-FMA share {nf_rnn:.3} must exceed GEMM's {nf_gemm:.3}"
    );
}
