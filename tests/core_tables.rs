//! End-to-end tests of the declarative machine-model layer (DESIGN.md §11).
//!
//! Three claims are pinned here, each across crate boundaries:
//!
//! 1. **Presets are tables.** Parsing the shipped `cores/{bdw,knl,skx}.core`
//!    files reproduces the in-code constructors field-for-field — the
//!    constructors survive only as a reference implementation, and the
//!    golden engine stacks (pinned by `engine_refactor_equivalence`) are
//!    produced from table-loaded configs.
//! 2. **Diagnostics are line-numbered.** Every class of table error —
//!    syntax, unknown reference, inconsistency, missing section — points
//!    at the offending line.
//! 3. **Table-only cores are first-class.** The zen/atom machines exist
//!    only as `.core` files, yet parse, validate, simulate, and uphold the
//!    static port-pressure bracket like any preset.

use mstacks::core::Session;
use mstacks::model::{coretab, CoreConfig, IdealFlags};
use mstacks::oracle::{static_port_bound, WorkloadSummary};
use mstacks::workloads::spec;

// ---------------------------------------------------------------------------
// 1. presets == parsed tables, field for field
// ---------------------------------------------------------------------------

fn preset_pairs() -> [(CoreConfig, &'static str); 3] {
    [
        (CoreConfig::broadwell(), "bdw"),
        (CoreConfig::knights_landing(), "knl"),
        (CoreConfig::skylake_server(), "skx"),
    ]
}

#[test]
fn shipped_preset_tables_match_the_constructors_field_for_field() {
    for (built, name) in preset_pairs() {
        let parsed = coretab::builtin(name).expect("shipped preset table");
        // Spelled-out fields first, so a mismatch names the culprit…
        assert_eq!(built.name, parsed.name);
        assert_eq!(built.fetch_width, parsed.fetch_width, "{name} fetch_width");
        assert_eq!(
            built.dispatch_width, parsed.dispatch_width,
            "{name} dispatch_width"
        );
        assert_eq!(built.issue_width, parsed.issue_width, "{name} issue_width");
        assert_eq!(
            built.commit_width, parsed.commit_width,
            "{name} commit_width"
        );
        assert_eq!(built.rob_size, parsed.rob_size, "{name} rob_size");
        assert_eq!(built.rs_size, parsed.rs_size, "{name} rs_size");
        assert_eq!(built.ldq_size, parsed.ldq_size, "{name} ldq_size");
        assert_eq!(built.stq_size, parsed.stq_size, "{name} stq_size");
        assert_eq!(
            built.frontend_depth, parsed.frontend_depth,
            "{name} frontend_depth"
        );
        assert_eq!(
            built.microcode_decode_cycles, parsed.microcode_decode_cycles,
            "{name} microcode_decode_cycles"
        );
        assert_eq!(built.ports, parsed.ports, "{name} ports");
        assert_eq!(built.lat, parsed.lat, "{name} latency table");
        assert_eq!(built.vector_bits, parsed.vector_bits, "{name} vector_bits");
        assert_eq!(
            built.freq_ghz.to_bits(),
            parsed.freq_ghz.to_bits(),
            "{name} freq_ghz"
        );
        assert_eq!(built.bpred, parsed.bpred, "{name} bpred");
        assert_eq!(built.mem, parsed.mem, "{name} memory hierarchy");
        // …then the whole-struct equality closes over any future field.
        assert_eq!(built, parsed, "{name}: constructor != parsed table");
    }
}

#[test]
fn preset_tables_round_trip_through_dump_and_parse() {
    // Comments and blank lines are the one freedom the shipped files take
    // over canonical dump output (zen/atom carry prose headers); the data
    // lines must match the dump exactly.
    fn data_lines(s: &str) -> Vec<&str> {
        s.lines()
            .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
            .collect()
    }
    for name in coretab::BUILTIN_NAMES {
        let cfg = coretab::builtin(name).expect("shipped table");
        coretab::roundtrip(&cfg).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            data_lines(coretab::builtin_source(name).expect("source")),
            data_lines(&coretab::dump(&cfg)),
            "{name}: shipped .core data lines are not canonical"
        );
    }
}

#[test]
fn table_loaded_presets_simulate_identically_to_constructed_ones() {
    let trace_len = 5_000;
    for (built, name) in preset_pairs() {
        let parsed = coretab::builtin(name).expect("shipped table");
        let a = Session::new(built)
            .run(spec::mcf().trace(trace_len))
            .expect("run");
        let b = Session::new(parsed)
            .run(spec::mcf().trace(trace_len))
            .expect("run");
        assert_eq!(a, b, "{name}: table-loaded config changed engine output");
    }
}

// ---------------------------------------------------------------------------
// 2. parser diagnostics carry line numbers
// ---------------------------------------------------------------------------

/// Returns the bdw table with the first line containing `needle` replaced
/// by `replacement`, plus that line's 1-based number.
fn patched(needle: &str, replacement: &str) -> (String, usize) {
    let src = coretab::builtin_source("bdw").expect("bdw table");
    let idx = src
        .lines()
        .position(|l| l.contains(needle))
        .unwrap_or_else(|| panic!("no line contains {needle:?}"));
    let out: Vec<String> = src
        .lines()
        .enumerate()
        .map(|(i, l)| {
            if i == idx {
                replacement.to_string()
            } else {
                l.to_string()
            }
        })
        .collect();
    (out.join("\n") + "\n", idx + 1)
}

#[test]
fn syntax_errors_point_at_the_offending_line() {
    let (src, line) = patched("rob_size", "rob_size 192"); // missing `=`
    let err = coretab::parse(&src).expect_err("missing `=` must fail");
    assert_eq!(err.line, Some(line), "{err}");
    assert!(err.to_string().contains(&format!("line {line}")), "{err}");
}

#[test]
fn unknown_port_references_point_at_the_class_row() {
    let (src, line) = patched("int_div", "int_div    21  no         p9");
    let err = coretab::parse(&src).expect_err("unknown port must fail");
    assert_eq!(err.line, Some(line), "{err}");
    assert!(err.to_string().contains("p9"), "{err}");
}

#[test]
fn bad_values_point_at_the_offending_line() {
    let (src, line) = patched("freq_ghz", "freq_ghz = fast");
    let err = coretab::parse(&src).expect_err("non-numeric freq must fail");
    assert_eq!(err.line, Some(line), "{err}");
}

#[test]
fn semantic_validation_errors_have_no_line_but_a_clear_message() {
    // A table can be syntactically perfect and still describe an invalid
    // machine; those errors come from `CoreConfig::validate` and carry no
    // line (the problem is cross-cutting, not positional).
    let (src, _) = patched("rs_size", "rs_size = 100000");
    let err = coretab::parse(&src).expect_err("RS > ROB must fail");
    assert_eq!(err.line, None, "{err}");
    assert!(err.to_string().contains("RS"), "{err}");
}

// ---------------------------------------------------------------------------
// 3. table-only cores are first-class machines
// ---------------------------------------------------------------------------

#[test]
fn table_only_cores_parse_validate_and_simulate() {
    for name in ["zen", "atom"] {
        let cfg = coretab::builtin(name).expect("shipped table-only core");
        cfg.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        let report = Session::new(cfg.clone())
            .run(spec::mcf().trace(10_000))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(report.cpi() > 0.0, "{name}: degenerate CPI");
        // The three stacks agree on total CPI on the new machines too.
        let cpi = report.cpi();
        for stack in report.multi.stacks() {
            assert!(
                (stack.total_cpi() - cpi).abs() < 1e-6,
                "{name}: stack total diverges from CPI"
            );
        }
    }
}

#[test]
fn static_port_bound_brackets_the_engine_on_table_only_cores() {
    for name in ["zen", "atom"] {
        let cfg = coretab::builtin(name).expect("shipped table-only core");
        for w in [spec::mcf(), spec::exchange2(), spec::povray()] {
            let summary = WorkloadSummary::profile(&cfg, IdealFlags::none(), w.trace(10_000));
            let bound = static_port_bound(&cfg, IdealFlags::none(), &summary);
            let report = Session::new(cfg.clone())
                .run(w.trace(10_000))
                .unwrap_or_else(|e| panic!("{} on {name}: {e}", w.name()));
            let issue = &report.multi.issue;
            let base = issue.cpi_of(mstacks::core::Component::Base);
            assert!(
                bound.bound_cpi + 1e-6 >= base,
                "{} on {name}: static bound {:.4} below issue Base CPI {base:.4}",
                w.name(),
                bound.bound_cpi
            );
            assert!(
                bound.bound_cpi <= issue.total_cpi() + 1e-6,
                "{} on {name}: static bound {:.4} above issue total CPI {:.4}",
                w.name(),
                bound.bound_cpi,
                issue.total_cpi()
            );
        }
    }
}
