//! Per-thread SMT accounting invariants (the §II extension).

use mstacks::core::Session;
use mstacks::prelude::*;

#[test]
fn per_thread_invariants_hold_under_smt() {
    let report = Session::new(CoreConfig::broadwell())
        .run_threads(vec![
            spec::exchange2().trace(10_000),
            spec::xz().trace(10_000),
        ])
        .expect("simulation completes");
    assert_eq!(report.threads.len(), 2);
    for (tid, t) in report.threads.iter().enumerate() {
        assert_eq!(t.result.committed_uops, 10_000, "thread {tid}");
        let cycles = t.result.cycles as f64;
        for s in t.multi.stacks() {
            // Off-by-one slack: a thread's drain cycle is quantized.
            assert!(
                (s.total_cycles() - cycles).abs() <= 2.0,
                "thread {tid} {}: {} vs {}",
                s.stage,
                s.total_cycles(),
                cycles
            );
            for (c, v) in s.iter_cpi() {
                assert!(v >= 0.0, "thread {tid} {}: negative {}", s.stage, c);
            }
        }
    }
}

#[test]
fn co_running_threads_slow_each_other_down() {
    let uops = 15_000u64;
    let solo = Session::new(CoreConfig::broadwell())
        .run(spec::exchange2().trace(uops))
        .expect("simulation completes");
    let smt = Session::new(CoreConfig::broadwell())
        .run_threads(vec![
            spec::exchange2().trace(uops),
            spec::exchange2().trace(uops),
        ])
        .expect("simulation completes");
    for t in &smt.threads {
        assert!(
            t.cpi() > solo.cpi(),
            "SMT thread cannot beat its solo run: {} vs {}",
            t.cpi(),
            solo.cpi()
        );
        // But the total throughput beats time-slicing: both threads finish
        // in less than 2x the solo time.
        assert!(
            t.result.cycles < 2 * solo.result.cycles,
            "SMT must beat serialization: {} vs {}",
            t.result.cycles,
            2 * solo.result.cycles
        );
    }
}

#[test]
fn smt_component_explains_the_slowdown_direction() {
    // A memory-bound thread and a compute-bound thread: both see smt > 0,
    // and the compute-bound thread (hungry for slots) sees more of it.
    let uops = 15_000u64;
    let report = Session::new(CoreConfig::broadwell())
        .run_threads(vec![spec::exchange2().trace(uops), spec::mcf().trace(uops)])
        .expect("simulation completes");
    let smt_of = |t: &mstacks::core::ThreadReport| {
        t.multi
            .stacks()
            .iter()
            .map(|s| s.cpi_of(Component::Smt))
            .fold(0.0f64, f64::max)
    };
    let compute = smt_of(&report.threads[0]);
    assert!(
        compute > 0.01,
        "the compute-bound co-runner must lose slots to SMT: {compute}"
    );
}

#[test]
fn smt_run_is_deterministic() {
    let run = || {
        Session::new(CoreConfig::knights_landing())
            .run_threads(vec![spec::povray().trace(8_000), spec::nab().trace(8_000)])
            .expect("simulation completes")
    };
    assert_eq!(run(), run());
}

#[test]
fn four_threads_are_supported() {
    let report = Session::new(CoreConfig::skylake_server())
        .run_threads(vec![
            spec::exchange2().trace(5_000),
            spec::xz().trace(5_000),
            spec::leela().trace(5_000),
            spec::nab().trace(5_000),
        ])
        .expect("simulation completes");
    assert_eq!(report.threads.len(), 4);
    for t in &report.threads {
        assert_eq!(t.result.committed_uops, 5_000);
    }
}
