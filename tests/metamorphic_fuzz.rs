//! Metamorphic-invariant fuzz tests through the public facade: seeded
//! random core configurations, no golden numbers — only the paper's
//! structural guarantees. The 100-config fleet runs in CI via
//! `cargo run --release --bin crosscheck`; this slice keeps the invariant
//! machinery honest on every `cargo test`.

use mstacks::core::Session;
use mstacks::model::rng::SmallRng;
use mstacks::model::{CoreConfig, IdealFlags, IDEAL_KINDS};
use mstacks::oracle::invariants;
use mstacks::workloads::spec;

const SEED: u64 = 0x00C0_FFEE;
const CONFIGS: usize = 8;
const UOPS: u64 = 6_000;

fn fleet() -> Vec<CoreConfig> {
    let mut rng = SmallRng::seed_from_u64(SEED);
    (0..CONFIGS).map(|_| CoreConfig::fuzz(&mut rng)).collect()
}

#[test]
fn fuzzer_is_deterministic_and_valid() {
    let a = fleet();
    let b = fleet();
    assert_eq!(a, b, "same seed must yield the same configs");
    for (i, cfg) in a.iter().enumerate() {
        cfg.validate()
            .unwrap_or_else(|e| panic!("fuzz config #{i} invalid: {e}"));
    }
    // The fleet must actually explore the space, not repeat one point.
    assert!(a.windows(2).any(|w| w[0] != w[1]));
}

#[test]
fn fuzzed_configs_uphold_conservation_and_flops_peak() {
    let profiles = spec::all();
    for (i, cfg) in fleet().iter().enumerate() {
        let w = &profiles[i % profiles.len()];
        let r = Session::new(cfg.clone())
            .run(w.trace(UOPS))
            .unwrap_or_else(|e| panic!("fuzz#{i} ({}) failed: {e}", w.name()));
        let v = invariants::check_report(&format!("fuzz#{i}:{}", w.name()), &r, cfg);
        assert!(v.is_empty(), "{v:?}");
    }
}

#[test]
fn fuzzed_configs_uphold_idealization_monotonicity() {
    let profiles = spec::all();
    for (i, cfg) in fleet().iter().enumerate() {
        let w = &profiles[i % profiles.len()];
        let kind = IDEAL_KINDS[i % IDEAL_KINDS.len()];
        let base = Session::new(cfg.clone())
            .run(w.trace(UOPS))
            .unwrap_or_else(|e| panic!("fuzz#{i} baseline failed: {e}"));
        let ideal = Session::new(cfg.clone())
            .with_ideal(IdealFlags::none().with(kind))
            .run(w.trace(UOPS))
            .unwrap_or_else(|e| panic!("fuzz#{i}+{kind} failed: {e}"));
        let v = invariants::check_idealization_monotone(
            &format!("fuzz#{i}:{}", w.name()),
            kind,
            &base,
            &ideal,
        );
        assert!(v.is_empty(), "{v:?}");
    }
}

#[test]
fn fuzzed_smt_sessions_keep_per_thread_books() {
    let profiles = spec::all();
    for (i, cfg) in fleet().iter().enumerate().take(3) {
        let w0 = &profiles[i % profiles.len()];
        let w1 = &profiles[(i + 7) % profiles.len()];
        let r = Session::new(cfg.clone())
            .run_threads(vec![w0.trace(UOPS / 2), w1.trace(UOPS / 2)])
            .unwrap_or_else(|e| panic!("fuzz#{i} smt failed: {e}"));
        assert_eq!(r.threads.len(), 2);
        let v = invariants::check_session(&format!("fuzz#{i}+smt"), &r, cfg);
        assert!(v.is_empty(), "{v:?}");
    }
}
