//! Exhaustive engine-level coverage of every `IdealFlags` combination.
//!
//! All 2⁴ = 16 subsets of {perfect-icache, perfect-dcache, perfect-bpred,
//! 1-cycle-alu} run on a fixed profile (mcf/BDW — the one profile where
//! all four targeted components are non-zero). Asserted:
//!
//! * every combination simulates to completion and keeps the books clean
//!   (stack conservation, FLOPS ≤ peak);
//! * adding any single flag to any subset never *increases* the stack
//!   component that flag targets, at any stage — the paper's idealization
//!   monotonicity, checked across the whole lattice (32 edges);
//! * the order in which a combination is built is irrelevant to the
//!   engine: same flag set ⇒ bit-identical cycles and stacks.

use mstacks::core::Session;
use mstacks::model::{CoreConfig, IdealFlags, IDEAL_KINDS};
use mstacks::oracle::invariants;
use mstacks::workloads::spec;
use std::sync::OnceLock;

const UOPS: u64 = 15_000;

fn report(flags: IdealFlags) -> mstacks::core::SimReport {
    Session::new(CoreConfig::broadwell())
        .with_ideal(flags)
        .run(spec::mcf().trace(UOPS))
        .unwrap_or_else(|e| panic!("{flags} failed: {e}"))
}

/// All 16 reports, indexed by `IdealFlags::bits()`, simulated once per
/// test binary.
fn lattice() -> &'static Vec<mstacks::core::SimReport> {
    static LATTICE: OnceLock<Vec<mstacks::core::SimReport>> = OnceLock::new();
    LATTICE.get_or_init(|| IdealFlags::combinations().map(report).collect())
}

#[test]
fn all_16_combinations_run_and_conserve() {
    let cfg = CoreConfig::broadwell();
    for flags in IdealFlags::combinations() {
        let r = &lattice()[flags.bits() as usize];
        assert!(r.result.committed_uops >= UOPS, "{flags} committed too few");
        let v = invariants::check_report(&flags.to_string(), r, &cfg);
        assert!(v.is_empty(), "{flags}: {v:?}");
    }
}

#[test]
fn baseline_has_all_four_target_components() {
    // The monotonicity test below is only meaningful if the fixed profile
    // actually exercises every component being idealized away.
    let base = &lattice()[0];
    for kind in IDEAL_KINDS {
        let c = invariants::idealized_component(kind);
        let (_, hi) = base.multi.bounds(c);
        assert!(hi > 0.005, "{c} is ~zero on mcf/BDW; pick another profile");
    }
}

#[test]
fn each_flag_monotonically_shrinks_its_component_across_the_lattice() {
    let all = lattice();
    let mut edges = 0;
    for kind in IDEAL_KINDS {
        for flags in IdealFlags::combinations() {
            if flags.has(kind) {
                continue;
            }
            let with = flags.with(kind);
            let v = invariants::check_idealization_monotone(
                &format!("{flags}→{with}"),
                kind,
                &all[flags.bits() as usize],
                &all[with.bits() as usize],
            );
            assert!(v.is_empty(), "{v:?}");
            edges += 1;
        }
    }
    assert_eq!(edges, 32); // 4 kinds × 8 subsets not containing the kind
}

#[test]
fn composition_order_is_irrelevant_at_engine_level() {
    // Build the same set in opposite orders, plus via union of halves.
    let fwd = IdealFlags::none()
        .with_perfect_icache()
        .with_perfect_dcache()
        .with_perfect_bpred()
        .with_single_cycle_alu();
    let rev = IdealFlags::none()
        .with_single_cycle_alu()
        .with_perfect_bpred()
        .with_perfect_dcache()
        .with_perfect_icache();
    let union = IdealFlags::none()
        .with_perfect_bpred()
        .with_perfect_icache()
        .union(
            IdealFlags::none()
                .with_single_cycle_alu()
                .with_perfect_dcache(),
        );
    assert_eq!(fwd, rev);
    assert_eq!(fwd, union);

    let a = report(fwd);
    let b = report(rev);
    assert_eq!(a.result.cycles, b.result.cycles);
    for (sa, sb) in a.multi.all_stacks().iter().zip(b.multi.all_stacks()) {
        for ((c, va), (_, vb)) in sa.iter_cpi().zip(sb.iter_cpi()) {
            assert_eq!(va, vb, "{c} differs between build orders");
        }
    }
}
