//! The paper's ordering and bounding properties of the three stacks.

use mstacks::prelude::*;
use mstacks::workloads::{SharedTraceBuffer, TraceBuffer};

#[test]
fn frontend_components_shrink_towards_commit() {
    // Paper §III-A: "the frontend miss components at the dispatch stage are
    // always larger than those at the issue stage, which in their turn are
    // larger than those of the commit stage."
    for w in [spec::cactus(), spec::gcc(), spec::mcf()] {
        let r = Session::new(CoreConfig::broadwell())
            .run(w.trace(20_000))
            .expect("simulation completes");
        for c in [Component::Icache, Component::Bpred] {
            let d = r.multi.dispatch.cpi_of(c);
            let i = r.multi.issue.cpi_of(c);
            let cm = r.multi.commit.cpi_of(c);
            // Allow accounting noise of a milli-CPI.
            assert!(
                d + 1e-3 >= i && i + 1e-3 >= cm,
                "{}: {} ordering violated: dispatch {d:.4} issue {i:.4} commit {cm:.4}",
                w.name(),
                c
            );
        }
    }
}

#[test]
fn backend_dcache_grows_towards_commit() {
    // The commit stage starts charging a D-miss as soon as it reaches the
    // ROB head; dispatch only once the ROB/RS fill up.
    for w in [spec::mcf(), spec::omnetpp()] {
        let r = Session::new(CoreConfig::broadwell())
            .run(w.trace(20_000))
            .expect("simulation completes");
        let d = r.multi.dispatch.cpi_of(Component::Dcache);
        let cm = r.multi.commit.cpi_of(Component::Dcache);
        assert!(
            cm + 1e-3 >= d,
            "{}: commit dcache {cm:.4} should be ≥ dispatch {d:.4}",
            w.name()
        );
    }
}

#[test]
fn issue_stack_lies_between_dispatch_and_commit() {
    // "For all examples, the issue stack components are in between the
    // respective components of the dispatch and commit stack" (§V-A) —
    // checked for the frontend/backend components where the ordering
    // argument applies.
    let r = Session::new(CoreConfig::broadwell())
        .run(spec::mcf().trace(20_000))
        .expect("simulation completes");
    for c in [Component::Icache, Component::Bpred, Component::Dcache] {
        let d = r.multi.dispatch.cpi_of(c);
        let i = r.multi.issue.cpi_of(c);
        let cm = r.multi.commit.cpi_of(c);
        let (lo, hi) = (d.min(cm), d.max(cm));
        assert!(
            i >= lo - 5e-3 && i <= hi + 5e-3,
            "{c}: issue {i:.4} outside [{lo:.4}, {hi:.4}]"
        );
    }
}

#[test]
fn bounds_contain_actual_bpred_improvement() {
    // The headline bounding property on a branch-dominated profile.
    let buf = TraceBuffer::capture(&spec::deepsjeng(), 30_000).shared();
    let cfg = CoreConfig::broadwell();
    let base = Session::new(cfg.clone())
        .run(buf.cursor())
        .expect("simulation completes");
    let ideal = Session::new(cfg)
        .with_ideal(IdealFlags::none().with_perfect_bpred())
        .run(buf.cursor())
        .expect("simulation completes");
    let actual = base.cpi() - ideal.cpi();
    let (lo, hi) = base.multi.bounds(Component::Bpred);
    assert!(
        base.multi.contains(Component::Bpred, actual),
        "actual {actual:.4} outside [{lo:.4}, {hi:.4}]"
    );
}

#[test]
fn bound_error_is_zero_inside_and_signed_outside() {
    let r = Session::new(CoreConfig::broadwell())
        .run(spec::mcf().trace(15_000))
        .expect("simulation completes");
    let (lo, hi) = r.multi.bounds(Component::Dcache);
    let mid = (lo + hi) / 2.0;
    assert_eq!(r.multi.bound_error(Component::Dcache, mid), 0.0);
    assert!(r.multi.bound_error(Component::Dcache, hi + 0.1) < 0.0);
    assert!(r.multi.bound_error(Component::Dcache, (lo - 0.1).max(0.0)) >= 0.0);
}

#[test]
fn perfect_everything_removes_all_miss_components() {
    // With every structure idealized, the only residual limiters are L1-hit
    // load latency inside dependence chains and load/store port pressure —
    // `perfect_dcache` makes every load an L1 hit, it does not make loads
    // free, so a load-dependence-heavy profile legitimately sits near
    // CPI ≈ 2/W rather than 1/W. The testable invariants are: every
    // idealized-away component is (near) zero, CPI strictly improves over
    // the baseline, and the stack is essentially base + depend.
    let cfg = CoreConfig::broadwell();
    let ideal = IdealFlags::none()
        .with_perfect_icache()
        .with_perfect_dcache()
        .with_perfect_bpred()
        .with_single_cycle_alu();
    let buf = TraceBuffer::capture(&spec::x264(), 20_000).shared();
    let base = Session::new(cfg.clone())
        .run(buf.cursor())
        .expect("simulation completes");
    let r = Session::new(cfg.clone())
        .with_ideal(ideal)
        .run(buf.cursor())
        .expect("simulation completes");
    let w = f64::from(cfg.accounting_width());
    assert!(
        r.cpi() < base.cpi(),
        "idealized CPI {} not below baseline {}",
        r.cpi(),
        base.cpi()
    );
    assert!(
        r.cpi() < 3.0 / w,
        "fully idealized x264 far from the width limit: CPI {}",
        r.cpi()
    );
    for c in [
        Component::Icache,
        Component::Dcache,
        Component::Bpred,
        Component::AluLat,
    ] {
        let v = r.multi.commit.cpi_of(c);
        assert!(v < 5e-3, "idealized component {c} still charges {v:.4} CPI");
    }
    let norm = r.multi.commit.normalized();
    let base_share = norm[Component::Base.index()];
    let depend_share = norm[Component::Depend.index()];
    assert!(
        base_share + depend_share > 0.9,
        "base {base_share:.3} + depend {depend_share:.3} should dominate"
    );
}
