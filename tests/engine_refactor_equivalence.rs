//! Golden-stack equivalence: the scheduler overhaul (PR 4) must not move a
//! single bit of the accounting. Every SPEC and DeepBench profile runs on
//! every core preset with 1- and 2-thread engines, and the cycle counts,
//! all stage CPI stacks and the FLOPS stacks are hashed and compared
//! against values pinned from the pre-refactor engine.
//!
//! Regenerate the goldens (only legitimate when the simulated
//! micro-architecture itself changes, never for a pure optimization) with:
//!
//! ```text
//! MSTACKS_BLESS=1 cargo test --test engine_refactor_equivalence
//! ```

use mstacks::core::{Session, ThreadReport, COMPONENTS, FLOPS_COMPONENTS};
use mstacks::model::CoreConfig;
use mstacks::workloads::{
    deepbench, spec, ConvPhase, GemmStyle, RnnCell, SharedTraceBuffer, TraceBuffer, Workload,
};
use std::fmt::Write as _;
use std::path::PathBuf;

const SPEC_UOPS: u64 = 3_000;
const DEEPBENCH_UOPS: u64 = 2_000;

/// The three presets, loaded from their shipped `.core` tables. The
/// goldens were pinned against the in-code constructors, so passing with
/// these configs *is* the proof that table loading is bit-exact.
fn cores() -> [CoreConfig; 3] {
    ["bdw", "knl", "skx"]
        .map(|name| mstacks::model::coretab::builtin(name).expect("shipped preset table"))
}

/// The DeepBench kernel set of `tests/conservation_audit.rs`, vectorized
/// for the core at hand.
fn deepbench_workloads(cfg: &CoreConfig) -> Vec<Workload> {
    let lanes = (cfg.vector_bits / 32) as u8;
    let style = if cfg.name == "knl" {
        GemmStyle::KnlJit
    } else {
        GemmStyle::SkxBroadcast
    };
    vec![
        Workload::Gemm {
            cfg: deepbench::sgemm_train_configs()[0],
            style,
            lanes,
        },
        Workload::Conv {
            cfg: deepbench::conv_configs()[0],
            phase: ConvPhase::Forward,
            lanes,
        },
        Workload::Rnn {
            cfg: deepbench::rnn_configs()[0],
            cell: RnnCell::Lstm,
            lanes,
        },
    ]
}

/// FNV-1a over raw `f64` bit patterns: any change to any component of a
/// stack — even in the last ulp — changes the digest.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn f64(&mut self, v: f64) {
        for b in v.to_bits().to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

/// One golden line per hardware thread: clear-text cycle/uop/flop counts
/// plus one digest per stage stack and one for the FLOPS stack.
fn thread_line(key: &str, tid: usize, t: &ThreadReport) -> String {
    let mut line = format!(
        "{key} thread={tid} cycles={} uops={} flops={}",
        t.result.cycles, t.result.committed_uops, t.result.committed_flops
    );
    let fetch = t.multi.fetch.as_ref().expect("fetch stack present");
    for (name, stack) in [
        ("fetch", fetch),
        ("dispatch", &t.multi.dispatch),
        ("issue", &t.multi.issue),
        ("commit", &t.multi.commit),
    ] {
        let mut h = Fnv::new();
        for c in COMPONENTS {
            h.f64(stack.cycles_of(c));
        }
        let _ = write!(line, " {name}={}", h.hex());
    }
    let mut h = Fnv::new();
    for c in FLOPS_COMPONENTS {
        h.f64(t.flops.cycles_of(c));
    }
    let _ = write!(line, " flops_stack={}", h.hex());
    line
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/engine_stacks.golden")
}

fn generate() -> String {
    let mut out = String::new();
    out.push_str(
        "# Pinned pre-refactor engine output: profile x core x threads -> \
         cycles + stack digests.\n# Regenerate: MSTACKS_BLESS=1 cargo test \
         --test engine_refactor_equivalence\n",
    );
    for cfg in cores() {
        let mut workloads: Vec<(Workload, u64)> =
            spec::all().into_iter().map(|w| (w, SPEC_UOPS)).collect();
        workloads.extend(
            deepbench_workloads(&cfg)
                .into_iter()
                .map(|w| (w, DEEPBENCH_UOPS)),
        );
        for (w, uops) in workloads {
            for n_threads in [1usize, 2] {
                let traces = (0..n_threads).map(|_| w.trace(uops)).collect();
                let report = Session::new(cfg.clone())
                    .run_threads(traces)
                    .unwrap_or_else(|e| panic!("{} on {} x{}: {e}", w.name(), cfg.name, n_threads));
                let key = format!("{} core={} threads={}", w.name(), cfg.name, n_threads);
                for (tid, t) in report.threads.iter().enumerate() {
                    out.push_str(&thread_line(&key, tid, t));
                    out.push('\n');
                }
            }
        }
    }
    out
}

#[test]
fn stacks_are_bit_identical_to_pre_refactor_goldens() {
    let path = golden_path();
    let actual = generate();
    if std::env::var("MSTACKS_BLESS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("parent dir")).expect("mkdir goldens");
        std::fs::write(&path, &actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    if expected == actual {
        return;
    }
    // Pinpoint the first divergence for the failure message.
    for (ln, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
        assert_eq!(
            e,
            a,
            "stack digests diverge from the pre-refactor engine (line {})",
            ln + 1
        );
    }
    assert_eq!(
        expected.lines().count(),
        actual.lines().count(),
        "golden file and generated output differ in length"
    );
}

/// Batched-span observer accounting vs the per-µop fallback.
///
/// The engine hands each thread's dispatch/commit spans to the observers
/// through `on_dispatch_uops`/`on_commit_uops`; the session's accountant
/// bundle overrides those with batched walks. The audit wrapper
/// deliberately does *not* override them, so an audited run takes the
/// trait's default-impl loop and forwards one µop at a time through
/// `on_dispatch_uop`/`on_commit_uop` of every accountant — the per-µop
/// fallback. Both paths must produce bit-identical reports; the per-µop
/// side also replays through the per-µop `TraceCursor` so the fallback
/// is witnessed on both the feed and the accounting layer.
#[test]
fn batched_observer_path_matches_per_uop_fallback() {
    for name in ["bdw", "zen"] {
        let cfg = mstacks::model::coretab::builtin(name).expect("shipped preset table");
        let mut workloads: Vec<(Workload, u64)> =
            spec::all().into_iter().map(|w| (w, SPEC_UOPS)).collect();
        workloads.extend(
            deepbench_workloads(&cfg)
                .into_iter()
                .map(|w| (w, DEEPBENCH_UOPS)),
        );
        assert_eq!(workloads.len(), 24, "full profile matrix");
        for (w, uops) in workloads {
            let buf = TraceBuffer::capture(&w, uops).shared();
            let batched = Session::new(cfg.clone())
                .run(buf.cursor())
                .unwrap_or_else(|e| panic!("{} on {name}: {e}", w.name()));
            let per_uop = Session::new(cfg.clone())
                .audit(true)
                .run(buf.cursor_per_uop())
                .unwrap_or_else(|e| panic!("{} on {name} (audited): {e}", w.name()));
            assert_eq!(
                batched,
                per_uop,
                "batched/per-µop observer divergence for {} on {name}",
                w.name()
            );
        }
    }
}
