//! Every named SPEC-like profile was designed around a bottleneck (see
//! `workloads::spec` docs). This test pins each profile's *dominant
//! non-base stall component* on BDW, so a retuning that silently changes a
//! profile's character fails loudly.

use mstacks::prelude::*;

/// Expected dominant stall component per profile, judged by the *upper
/// bound* across the three stacks (frontend components peak at dispatch,
/// backend at commit, so the bound max is the fair dominance metric).
/// The core column matters: `imagick` is a KNL case study in the paper.
/// `None` = balanced profile, no single dominance asserted.
fn expectations() -> Vec<(&'static str, &'static str, Option<Component>)> {
    vec![
        ("mcf", "bdw", Some(Component::Dcache)),
        ("cactus", "bdw", Some(Component::Icache)),
        ("bwaves", "bdw", Some(Component::Dcache)), // streams; icache secondary
        ("imagick", "knl", Some(Component::AluLat)),
        ("lbm", "bdw", Some(Component::Dcache)),
        ("fotonik3d", "bdw", Some(Component::Dcache)),
        ("pop2", "bdw", Some(Component::Dcache)),
        ("roms", "bdw", Some(Component::Dcache)),
        ("omnetpp", "bdw", Some(Component::Dcache)),
        ("exchange2", "bdw", None),
        ("povray", "knl", None),
        ("gcc", "bdw", None),
        ("perlbench", "bdw", None),
        ("deepsjeng", "bdw", None),
        ("leela", "bdw", None),
        ("xz", "bdw", None),
        ("x264", "bdw", None),
        ("xalancbmk", "bdw", None),
        ("wrf", "bdw", None),
        ("cam4", "bdw", None),
        ("nab", "bdw", None), // FP chains + L2-resident data: mixed
    ]
}

#[test]
fn profiles_keep_their_designed_bottleneck() {
    let stall_components = [
        Component::Icache,
        Component::Bpred,
        Component::Dcache,
        Component::AluLat,
        Component::Depend,
        Component::Microcode,
        Component::MemConflict,
        Component::Other,
    ];
    let mut failures = Vec::new();
    for (name, core, expected) in expectations() {
        let Some(expected) = expected else { continue };
        let w = spec::by_name(name).expect("profile exists");
        let cfg = match core {
            "knl" => CoreConfig::knights_landing(),
            _ => CoreConfig::broadwell(),
        };
        let r = Session::new(cfg)
            .run(w.trace(100_000))
            .expect("simulation completes");
        let dominant = stall_components
            .iter()
            .copied()
            .max_by(|a, b| {
                r.multi
                    .bounds(*a)
                    .1
                    .partial_cmp(&r.multi.bounds(*b).1)
                    .expect("no NaNs")
            })
            .expect("non-empty");
        if dominant != expected {
            failures.push(format!(
                "{name}/{core}: expected {expected} to dominate, found {dominant} \
                 ({expected}≤{:.3}, {dominant}≤{:.3})",
                r.multi.bounds(expected).1,
                r.multi.bounds(dominant).1
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "profile drift:\n{}",
        failures.join("\n")
    );
}

#[test]
fn every_profile_exercises_multiple_components() {
    // No profile should be a degenerate single-component microbenchmark:
    // at least two stall components above 2% of CPI.
    for w in spec::all() {
        let r = Session::new(CoreConfig::broadwell())
            .run(w.trace(30_000))
            .expect("simulation completes");
        let commit = &r.multi.commit;
        let cpi = r.cpi();
        let active = commit
            .iter_cpi()
            .filter(|&(c, v)| c != Component::Base && v > 0.02 * cpi)
            .count();
        assert!(
            active >= 2,
            "{} exercises only {active} stall component(s)",
            w.name()
        );
    }
}

#[test]
fn knl_microcode_profiles_show_microcode_only_there() {
    // povray and imagick are the microcoded profiles; on KNL they must
    // show a Microcode component and the others must not.
    for w in spec::all() {
        let r = Session::new(CoreConfig::knights_landing())
            .run(w.trace(25_000))
            .expect("simulation completes");
        let m = r.multi.dispatch.cpi_of(Component::Microcode);
        let name = w.name();
        if name == "povray" || name == "imagick" {
            assert!(m > 0.005, "{name} must show microcode stalls: {m}");
        } else {
            assert!(m < 0.05, "{name} should not be microcode-bound: {m}");
        }
    }
}
