//! Cross-crate invariants of the accounting algorithms: every stack must
//! decompose the *same* execution, so totals are pinned to the pipeline's
//! cycle and commit counters.

use mstacks::prelude::*;

fn cores() -> [CoreConfig; 3] {
    [
        CoreConfig::broadwell(),
        CoreConfig::knights_landing(),
        CoreConfig::skylake_server(),
    ]
}

fn small_suite() -> Vec<Workload> {
    vec![
        spec::mcf(),
        spec::exchange2(),
        spec::povray(),
        spec::bwaves(),
    ]
}

#[test]
fn every_stack_sums_to_total_cycles() {
    for cfg in cores() {
        for w in small_suite() {
            let r = Session::new(cfg.clone())
                .run(w.trace(15_000))
                .expect("simulation completes");
            let cycles = r.result.cycles as f64;
            for s in r.multi.stacks() {
                assert!(
                    (s.total_cycles() - cycles).abs() < 1e-6,
                    "{} on {}: {} stack sums to {} ≠ {} cycles",
                    w.name(),
                    cfg.name,
                    s.stage,
                    s.total_cycles(),
                    cycles
                );
            }
            assert!(
                (r.flops.total_cycles() - cycles).abs() < 1e-6,
                "{} on {}: FLOPS stack sums to {} ≠ {}",
                w.name(),
                cfg.name,
                r.flops.total_cycles(),
                cycles
            );
        }
    }
}

#[test]
fn base_component_identical_across_stages() {
    // Ground-truth mode: every correct-path micro-op traverses every stage
    // exactly once, so the base components agree (paper §III-A) and equal
    // uops / W.
    for cfg in cores() {
        let w = spec::mcf();
        let r = Session::new(cfg.clone())
            .run(w.trace(15_000))
            .expect("simulation completes");
        let b = r.multi.commit.cycles_of(Component::Base);
        for s in r.multi.stacks() {
            assert!(
                (s.cycles_of(Component::Base) - b).abs() < 1e-6,
                "{}: base differs at {}",
                cfg.name,
                s.stage
            );
        }
        let expect = r.result.committed_uops as f64 / f64::from(cfg.accounting_width());
        assert!(
            (b - expect).abs() < 1.0,
            "{}: base {} ≠ uops/W {}",
            cfg.name,
            b,
            expect
        );
    }
}

#[test]
fn all_components_non_negative() {
    for w in small_suite() {
        let r = Session::new(CoreConfig::broadwell())
            .run(w.trace(15_000))
            .expect("simulation completes");
        for s in r.multi.stacks() {
            for (c, v) in s.iter_cpi() {
                assert!(v >= 0.0, "{}: negative {} at {}", w.name(), c, s.stage);
            }
        }
        for (c, v) in r.flops.iter_normalized() {
            assert!(v >= -1e-12, "{}: negative FLOPS {}", w.name(), c);
        }
    }
}

#[test]
fn commit_count_equals_trace_length() {
    for cfg in cores() {
        let r = Session::new(cfg)
            .run(spec::gcc().trace(12_345))
            .expect("simulation completes");
        assert_eq!(r.result.committed_uops, 12_345);
    }
}

#[test]
fn flops_eq1_consistent_with_committed_flops() {
    // Paper Eq. (1): base/cycles × M must equal the architectural FLOP
    // rate — the committed-FLOPs counter provides an independent check.
    let cfg = CoreConfig::skylake_server();
    let w = Workload::Gemm {
        cfg: mstacks::workloads::GemmConfig {
            m: 64,
            n: 64,
            k: 64,
            train: true,
        },
        style: mstacks::workloads::GemmStyle::SkxBroadcast,
        lanes: 16,
    };
    let r = Session::new(cfg)
        .run(w.trace(20_000))
        .expect("simulation completes");
    let from_stack = r.flops.achieved_flops_per_cycle();
    let from_commits = r.result.committed_flops as f64 / r.result.cycles as f64;
    // Issued-but-uncommitted tail ops allow a tiny divergence.
    assert!(
        (from_stack - from_commits).abs() / from_commits.max(1e-9) < 0.02,
        "Eq.(1) rate {from_stack} vs committed rate {from_commits}"
    );
}

#[test]
fn total_cpi_consistent_with_pipeline_cpi() {
    let r = Session::new(CoreConfig::broadwell())
        .run(spec::xz().trace(15_000))
        .expect("simulation completes");
    for s in r.multi.stacks() {
        assert!(
            (s.total_cpi() - r.cpi()).abs() < 1e-6,
            "{} stack CPI {} ≠ {}",
            s.stage,
            s.total_cpi(),
            r.cpi()
        );
    }
}

#[test]
fn microcode_component_only_on_microcoded_cores() {
    let w = spec::povray(); // microcoded profile
    let knl = Session::new(CoreConfig::knights_landing())
        .run(w.trace(15_000))
        .expect("simulation completes");
    let bdw = Session::new(CoreConfig::broadwell())
        .run(w.trace(15_000))
        .expect("simulation completes");
    assert!(
        knl.multi.dispatch.cpi_of(Component::Microcode) > 0.01,
        "KNL must show a microcode component for povray"
    );
    assert!(
        bdw.multi.dispatch.cpi_of(Component::Microcode) < 1e-9,
        "BDW decodes microcode without stalling"
    );
}

#[test]
fn dcache_level_breakdown_sums_to_component() {
    use mstacks::mem::HitLevel;
    // mcf mixes L2/L3/DRAM misses on BDW.
    let r = Session::new(CoreConfig::broadwell())
        .run(spec::mcf().trace(20_000))
        .expect("simulation completes");
    for s in r.multi.stacks() {
        let sum = s.dcache_level_cpi(HitLevel::L2)
            + s.dcache_level_cpi(HitLevel::L3)
            + s.dcache_level_cpi(HitLevel::Mem);
        let total = s.cpi_of(Component::Dcache);
        assert!(
            (sum - total).abs() < 1e-9,
            "{}: level split {sum} ≠ dcache {total}",
            s.stage
        );
    }
    // A DRAM-bound profile shows a dominant DRAM share.
    let commit = &r.multi.commit;
    assert!(
        commit.dcache_level_cpi(HitLevel::Mem) + commit.dcache_level_cpi(HitLevel::L3)
            > commit.dcache_level_cpi(HitLevel::L2) * 0.2,
        "mcf must have deep misses"
    );
}

#[test]
fn steady_state_cache_resident_split_favours_cache_levels() {
    use mstacks::mem::HitLevel;
    use mstacks::model::{ArchReg, MicroOp, UopKind};
    // Serial loads sweeping a 300 KiB region (fits the L3 slice, exceeds
    // the L1D/L2) for many passes: after the compulsory pass, the blamed
    // level must be a cache, not DRAM. Dependences serialize the loads so
    // their latency is actually blamed.
    const REGION: u64 = 300 * 1024;
    let passes = 16u64;
    let per_pass = REGION / 64;
    let trace = (0..passes * per_pass).map(move |i| {
        let addr = 0x4000_0000 + (i % per_pass) * 64;
        MicroOp::new(0x1000 + (i % 64) * 4, UopKind::Load { addr })
            .with_src(ArchReg::new(1))
            .with_dst(ArchReg::new(1))
    });
    let r = Session::new(CoreConfig::broadwell())
        .run(trace)
        .expect("simulation completes");
    let commit = &r.multi.commit;
    let cached = commit.dcache_level_cpi(HitLevel::L2) + commit.dcache_level_cpi(HitLevel::L3);
    let mem = commit.dcache_level_cpi(HitLevel::Mem);
    assert!(
        cached > mem,
        "steady-state resident sweep must blame cache levels: cached {cached} vs mem {mem}"
    );
    assert!(commit.cpi_of(Component::Dcache) > 0.5, "loads must stall");
}
