//! Metamorphic invariants of multi-core co-runs, through the public
//! facade. No golden numbers — only the structural guarantees of the
//! shared-uncore contention model:
//!
//! 1. a 1-core co-run and an idle (empty-trace) co-runner leave a core's
//!    books **bit-identical** to a solo [`Session`] run, with an
//!    interference component of exactly zero;
//! 2. structurally identical co-runners on disjoint address ranges earn
//!    identical per-core stacks (no hidden core-index bias);
//! 3. adding a co-runner never *improves* any core — fuzzed over 100+
//!    seeded random core configurations and workload pairs.

use mstacks::core::{CoRun, Component, Session};
use mstacks::model::rng::SmallRng;
use mstacks::model::{CoreConfig, MicroOp, UopKind};
use mstacks::workloads::spec;

const SEED: u64 = 0x00C0_FFEE;
const FUZZ_CONFIGS: usize = 100;
const UOPS: u64 = 1_500;

/// Relocates a micro-op by `delta` bytes: pc, memory addresses and branch
/// targets all shift together, so the stream is structurally identical
/// but touches a disjoint address range. (Wrong-path generation derives
/// from the pc and produces no memory traffic, so this covers every
/// address the pipeline can emit.)
fn relocate(mut u: MicroOp, delta: u64) -> MicroOp {
    u.pc = u.pc.wrapping_add(delta);
    u.kind = match u.kind {
        UopKind::Load { addr } => UopKind::Load {
            addr: addr.wrapping_add(delta),
        },
        UopKind::Store { addr } => UopKind::Store {
            addr: addr.wrapping_add(delta),
        },
        UopKind::Branch(mut b) => {
            b.target = b.target.wrapping_add(delta);
            b.fallthrough = b.fallthrough.wrapping_add(delta);
            UopKind::Branch(b)
        }
        k => k,
    };
    u
}

/// Per-core address slice: 1 GiB apart, far beyond any profile's span.
fn core_delta(core: u64) -> u64 {
    core * 0x4000_0000
}

fn captured(w: &mstacks::workloads::Workload, uops: u64, core: u64) -> Vec<MicroOp> {
    w.trace(uops)
        .map(|u| relocate(u, core_delta(core)))
        .collect()
}

fn fleet(n: usize) -> Vec<CoreConfig> {
    let mut rng = SmallRng::seed_from_u64(SEED);
    (0..n).map(|_| CoreConfig::fuzz(&mut rng)).collect()
}

/// Every stack of every core must carry the interference component, and
/// for a solo/idle-co-runner core it must be exactly zero.
fn assert_zero_interference(report: &mstacks::core::CoRunReport, core: usize) {
    let c = &report.cores[core];
    for s in c.multi.stacks() {
        assert_eq!(
            s.cycles_of(Component::Interference),
            0.0,
            "core {core} {} stack",
            s.stage
        );
    }
    if let Some(f) = &c.multi.fetch {
        assert_eq!(
            f.cycles_of(Component::Interference),
            0.0,
            "core {core} fetch"
        );
    }
    assert_eq!(report.shared.cores[core].interference_cycles, 0);
}

#[test]
fn idle_corunner_leaves_the_books_bit_identical_to_solo() {
    // An idle co-runner (empty trace) occupies a core slot but issues no
    // uncore traffic: the active core's counterfactual and actual timings
    // see the same request stream, so its whole report — stacks, FLOPS,
    // memory statistics — must match a solo Session bit for bit.
    let w = spec::mcf();
    let trace = captured(&w, 4_000, 0);
    let solo = Session::new(CoreConfig::broadwell())
        .run(trace.clone().into_iter())
        .expect("solo completes");
    let corun = CoRun::new(CoreConfig::broadwell())
        .run(vec![trace.into_iter(), Vec::new().into_iter()])
        .expect("co-run completes");
    assert_eq!(corun.cores.len(), 2);
    let active = &corun.cores[0];
    assert_eq!(solo.result, active.result);
    assert_eq!(solo.multi, active.multi);
    assert_eq!(solo.flops, active.flops);
    assert_zero_interference(&corun, 0);
    // The idle core never ran a cycle and delayed nobody.
    assert_eq!(corun.cores[1].result.committed_uops, 0);
    assert_eq!(corun.shared.cores[1].delays_caused, 0);
}

#[test]
fn idle_corunner_is_inert_on_fuzzed_cores_too() {
    let profiles = spec::all();
    for (i, cfg) in fleet(5).iter().enumerate() {
        let w = &profiles[i % profiles.len()];
        let trace = captured(w, UOPS, 0);
        let solo = CoRun::new(cfg.clone())
            .run(vec![trace.clone().into_iter()])
            .unwrap_or_else(|e| panic!("fuzz#{i} solo failed: {e}"));
        let pair = CoRun::new(cfg.clone())
            .run(vec![trace.into_iter(), Vec::new().into_iter()])
            .unwrap_or_else(|e| panic!("fuzz#{i} idle pair failed: {e}"));
        assert_eq!(solo.cores[0], pair.cores[0], "fuzz#{i} ({})", w.name());
        assert_zero_interference(&solo, 0);
        assert_zero_interference(&pair, 0);
    }
}

#[test]
fn symmetric_corunners_earn_symmetric_stacks() {
    // Two copies of the same profile, relocated to disjoint 1 GiB slices:
    // structurally identical request streams in lockstep. Same-cycle
    // shared-channel arrivals must be arbitrated in *some* order, and the
    // lockstep driver steps cores in index order — so the core at index 0
    // wins every exact tie and initially synchronized streams drift apart
    // at the first collision. The symmetry that CAN hold exactly is
    // positional: swapping the two traces must swap the two books bit for
    // bit (nothing about a *trace* ever biases arbitration). On top of
    // that, the residual index bias must stay small: same-profile cores
    // end within 1% of each other's cycle count, with every commit-stack
    // component split near-evenly.
    for w in [spec::mcf(), spec::lbm(), spec::exchange2()] {
        let fwd = CoRun::new(CoreConfig::broadwell())
            .run(vec![
                captured(&w, 4_000, 0).into_iter(),
                captured(&w, 4_000, 1).into_iter(),
            ])
            .expect("co-run completes");
        let rev = CoRun::new(CoreConfig::broadwell())
            .run(vec![
                captured(&w, 4_000, 1).into_iter(),
                captured(&w, 4_000, 0).into_iter(),
            ])
            .expect("co-run completes");
        // Exact positional symmetry: arbitration sees core indices, never
        // trace contents, so the swapped run mirrors the original's timing
        // and retirement books exactly. (Speculative-stage attribution is
        // excluded: relocation shifts the pc-seeded wrong-path contents,
        // which re-labels blame on squashed slots without moving a cycle.)
        for pos in 0..2 {
            assert_eq!(
                fwd.cores[pos].result.cycles,
                rev.cores[pos].result.cycles,
                "{} position {pos}",
                w.name()
            );
            assert_eq!(
                fwd.cores[pos].result.committed_uops,
                rev.cores[pos].result.committed_uops
            );
            assert_eq!(
                fwd.cores[pos].multi.commit,
                rev.cores[pos].multi.commit,
                "{} position {pos} commit books",
                w.name()
            );
        }
        // Bounded index bias between the identical co-runners.
        let (a, b) = (&fwd.cores[0], &fwd.cores[1]);
        assert_eq!(a.result.committed_uops, b.result.committed_uops);
        let (ca, cb) = (a.result.cycles as f64, b.result.cycles as f64);
        assert!(
            (ca - cb).abs() <= 0.01 * ca.max(cb),
            "{}: tie-break bias too large ({ca} vs {cb} cycles)",
            w.name()
        );
        for (sa, sb) in a.multi.stacks().iter().zip(b.multi.stacks()) {
            // A queueing delay the tie-winner escapes is `icache`/`dcache`
            // time on one core and `interference` on the other — both I-
            // and D-side misses route through the shared uncore, so those
            // labels trade places between the cores. Their *sum* is the
            // symmetric quantity; every other component is bounded
            // individually.
            let mempath = |s: &mstacks::core::CpiStack| {
                s.cycles_of(Component::Icache)
                    + s.cycles_of(Component::Dcache)
                    + s.cycles_of(Component::Interference)
            };
            let d = (mempath(sa) - mempath(sb)).abs();
            assert!(
                d <= 0.02 * ca.max(cb),
                "{}: {} memory-path blame differs by {d} cycles",
                w.name(),
                sa.stage
            );
            for c in mstacks::core::COMPONENTS {
                if matches!(
                    c,
                    Component::Icache | Component::Dcache | Component::Interference
                ) {
                    continue;
                }
                let d = (sa.cycles_of(c) - sb.cycles_of(c)).abs();
                assert!(
                    d <= 0.015 * ca.max(cb),
                    "{}: {} {} differs by {d} cycles between identical cores",
                    w.name(),
                    sa.stage,
                    c.label()
                );
            }
        }
    }
}

#[test]
fn a_corunner_never_improves_any_core() {
    // The central monotonicity law: for every core, co-running can only
    // add cycles — the shared channel, the MSHR pool and the L3 slice are
    // strictly contended, and disjoint address slices rule out
    // constructive sharing. Fuzzed over 100 seeded core configurations,
    // each with a distinct workload pair.
    let profiles = spec::all();
    let mut contended = 0usize;
    for (i, cfg) in fleet(FUZZ_CONFIGS).iter().enumerate() {
        let w0 = &profiles[i % profiles.len()];
        let w1 = &profiles[(i + 7) % profiles.len()];
        let t0 = captured(w0, UOPS, 0);
        let t1 = captured(w1, UOPS, 1);
        let solo0 = CoRun::new(cfg.clone())
            .run(vec![t0.clone().into_iter()])
            .unwrap_or_else(|e| panic!("fuzz#{i} solo {} failed: {e}", w0.name()));
        let solo1 = CoRun::new(cfg.clone())
            .run(vec![t1.clone().into_iter()])
            .unwrap_or_else(|e| panic!("fuzz#{i} solo {} failed: {e}", w1.name()));
        let pair = CoRun::new(cfg.clone())
            .run(vec![t0.into_iter(), t1.into_iter()])
            .unwrap_or_else(|e| panic!("fuzz#{i} {}+{} failed: {e}", w0.name(), w1.name()));
        for (c, solo) in [&solo0, &solo1].into_iter().enumerate() {
            assert_eq!(
                pair.cores[c].result.committed_uops, solo.cores[0].result.committed_uops,
                "fuzz#{i} core {c}: co-run must retire the same work"
            );
            assert!(
                pair.cores[c].result.cycles >= solo.cores[0].result.cycles,
                "fuzz#{i} core {c} ({} vs {}): co-run took {} cycles, solo {}",
                w0.name(),
                w1.name(),
                pair.cores[c].result.cycles,
                solo.cores[0].result.cycles
            );
        }
        if pair.shared.cores.iter().any(|c| c.interference_cycles > 0) {
            contended += 1;
        }
    }
    // The battery must actually exercise contention, not vacuously pass
    // on configurations whose workloads never meet in the uncore.
    assert!(
        contended >= FUZZ_CONFIGS / 4,
        "only {contended}/{FUZZ_CONFIGS} fuzzed pairs saw any interference"
    );
}
