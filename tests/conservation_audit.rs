//! End-to-end audit-subsystem tests: every named workload profile runs
//! clean under the conservation auditor on every core preset, audited runs
//! reproduce the plain runs bit-for-bit, and a deliberately corrupted
//! accountant is caught with the right stage attribution.

use mstacks::core::{AuditOptions, CoRun, Component, FaultSpec, Session, Stage};
use mstacks::model::{coretab, CoreConfig};
use mstacks::pipeline::PipelineError;
use mstacks::workloads::{deepbench, spec, ConvPhase, GemmStyle, RnnCell, Workload};

fn cores() -> [CoreConfig; 3] {
    [
        CoreConfig::broadwell(),
        CoreConfig::knights_landing(),
        CoreConfig::skylake_server(),
    ]
}

/// Runs `w` audited on `cfg`, asserts a clean report and that every
/// finalized stage stack sums to the measured cycle count.
fn assert_clean(w: &Workload, cfg: &CoreConfig, uops: u64) {
    let (report, audit) = Session::new(cfg.clone())
        .run_threads_audited(vec![w.trace(uops)], AuditOptions::default())
        .unwrap_or_else(|e| panic!("{} on {}: {e}", w.name(), cfg.name));
    for t in &report.threads {
        let cycles = t.result.cycles as f64;
        for s in t.multi.all_stacks() {
            assert!(
                (s.total_cycles() - cycles).abs() <= 1e-6 * cycles.max(1.0),
                "{} on {}: {} stack sums to {} over {} cycles",
                w.name(),
                cfg.name,
                s.stage,
                s.total_cycles(),
                cycles,
            );
        }
    }
    assert!(
        audit.is_clean(),
        "{} on {}: {} violation(s), first: {}",
        w.name(),
        cfg.name,
        audit.violations.len() + audit.dropped,
        audit
            .violations
            .first()
            .map_or_else(|| "<dropped>".to_string(), std::string::ToString::to_string),
    );
    assert!(audit.cycles_checked > 0, "auditor saw no cycles");
}

#[test]
fn every_spec_profile_audits_clean_on_every_core() {
    for cfg in cores() {
        for w in spec::all() {
            assert_clean(&w, &cfg, 5_000);
        }
    }
}

fn deepbench_workloads(cfg: &CoreConfig) -> Vec<Workload> {
    let lanes = (cfg.vector_bits / 32) as u8;
    let style = if cfg.name == "knl" {
        GemmStyle::KnlJit
    } else {
        GemmStyle::SkxBroadcast
    };
    vec![
        Workload::Gemm {
            cfg: deepbench::sgemm_train_configs()[0],
            style,
            lanes,
        },
        Workload::Conv {
            cfg: deepbench::conv_configs()[0],
            phase: ConvPhase::Forward,
            lanes,
        },
        Workload::Rnn {
            cfg: deepbench::rnn_configs()[0],
            cell: RnnCell::Lstm,
            lanes,
        },
    ]
}

#[test]
fn deepbench_kernels_audit_clean_on_every_core() {
    for cfg in cores() {
        for w in deepbench_workloads(&cfg) {
            assert_clean(&w, &cfg, 2_000);
        }
    }
}

#[test]
fn residual_folding_is_exact_across_the_full_corpus() {
    // The WidthNormalizer keeps its carry as an integer count of 1/W
    // slots, and finalize folds the residual into the base component, so
    // every stage stack must sum to the measured cycle count — *bit
    // exactly* when the accounting width is a power of two (all fractions
    // are dyadic rationals), and within f64 rounding of the summation for
    // other widths (zen's W = 6). Full corpus: the 21 SPEC-like profiles
    // plus the three deepbench kernels, on the three constructed presets
    // plus the two table-only cores, auditor on throughout.
    let mut cores: Vec<CoreConfig> = cores().into();
    for name in ["zen", "atom"] {
        cores.push(coretab::builtin(name).expect("shipped table"));
    }
    for cfg in &cores {
        let mut corpus = spec::all();
        corpus.extend(deepbench_workloads(cfg));
        assert_eq!(corpus.len(), 24, "corpus drifted — update the doc above");
        let exact = cfg.accounting_width().is_power_of_two();
        for w in corpus {
            let (report, audit) = Session::new(cfg.clone())
                .run_threads_audited(vec![w.trace(4_000)], AuditOptions::default())
                .unwrap_or_else(|e| panic!("{} on {}: {e}", w.name(), cfg.name));
            assert!(
                audit.is_clean(),
                "{} on {}: audit dirty",
                w.name(),
                cfg.name
            );
            for t in &report.threads {
                let cycles = t.result.cycles as f64;
                for s in t.multi.all_stacks() {
                    let total = s.total_cycles();
                    if exact {
                        assert!(
                            total.to_bits() == cycles.to_bits(),
                            "{} on {} (W={}): {} stack sums to {total:?}, \
                             cycles {cycles:?} — residual folding not exact",
                            w.name(),
                            cfg.name,
                            cfg.accounting_width(),
                            s.stage,
                        );
                    } else {
                        assert!(
                            (total - cycles).abs() <= 1e-9 * cycles.max(1.0),
                            "{} on {} (W={}): {} stack sums to {total} over \
                             {cycles} cycles",
                            w.name(),
                            cfg.name,
                            cfg.accounting_width(),
                            s.stage,
                        );
                    }
                }
            }
        }
    }
}

/// The co-run battery's core set: one constructed preset and one
/// table-only core (exercising the declarative path under contention).
fn corun_cores() -> [CoreConfig; 2] {
    [
        CoreConfig::broadwell(),
        coretab::builtin("zen").expect("shipped table"),
    ]
}

/// Runs `ws` co-located (one core each) audited on `cfg`; asserts a clean
/// report and per-core conservation — every stage stack, interference
/// component included, sums to that core's measured cycle count. Returns
/// the total attributed interference so callers can prove the battery
/// actually exercised contention.
fn assert_corun_clean(ws: &[Workload], cfg: &CoreConfig, uops: u64) -> u64 {
    let label = || {
        let names: Vec<String> = ws.iter().map(Workload::name).collect();
        format!("[{}] on {}", names.join("+"), cfg.name)
    };
    let traces = ws.iter().map(|w| w.trace(uops)).collect();
    let (report, audit) = CoRun::new(cfg.clone())
        .run_audited(traces, AuditOptions::default())
        .unwrap_or_else(|e| panic!("{}: {e}", label()));
    for (c, core) in report.cores.iter().enumerate() {
        let cycles = core.result.cycles as f64;
        for s in core.multi.all_stacks() {
            assert!(
                (s.total_cycles() - cycles).abs() <= 1e-6 * cycles.max(1.0),
                "{} core {c}: {} stack sums to {} over {} cycles \
                 (interference {})",
                label(),
                s.stage,
                s.total_cycles(),
                cycles,
                s.cycles_of(Component::Interference),
            );
        }
    }
    assert!(
        audit.is_clean(),
        "{}: {} violation(s), first: {}",
        label(),
        audit.violations.len() + audit.dropped,
        audit
            .violations
            .first()
            .map_or_else(|| "<dropped>".to_string(), std::string::ToString::to_string),
    );
    assert!(audit.cycles_checked > 0, "auditor saw no cycles");
    report
        .shared
        .cores
        .iter()
        .map(|c| c.interference_cycles)
        .sum()
}

#[test]
fn every_profile_conserves_in_2_core_coruns() {
    // Every SPEC profile and DeepBench kernel co-runs against a fixed
    // memory-bound partner on bdw and zen; each core's books must
    // conserve cycle-for-cycle with the interference component included.
    let partner = spec::mcf();
    let mut interference = 0u64;
    for cfg in corun_cores() {
        let mut corpus = spec::all();
        corpus.extend(deepbench_workloads(&cfg));
        for w in corpus {
            interference += assert_corun_clean(&[w, partner.clone()], &cfg, 2_000);
        }
    }
    assert!(
        interference > 0,
        "no 2-core pair ever contended — the battery is vacuous"
    );
}

#[test]
fn every_profile_conserves_in_4_core_coruns() {
    let mut interference = 0u64;
    for cfg in corun_cores() {
        let mut corpus = spec::all();
        corpus.extend(deepbench_workloads(&cfg));
        for chunk in corpus.chunks(4) {
            // The tail chunk is padded back to 4 cores with its own head.
            let mut ws: Vec<Workload> = chunk.to_vec();
            while ws.len() < 4 {
                ws.push(chunk[0].clone());
            }
            interference += assert_corun_clean(&ws, &cfg, 1_200);
        }
    }
    assert!(
        interference > 0,
        "no 4-core group ever contended — the battery is vacuous"
    );
}

#[test]
fn corrupted_shared_l3_book_is_caught_at_the_memory_stage() {
    // A lying shared structure must fail the *memory occupancy* check of
    // the per-core auditors, naming the shared-L3 MSHR pool.
    for cfg in corun_cores() {
        let err = CoRun::new(cfg.clone())
            .with_corrupt_shared_book()
            .run(vec![spec::mcf().trace(2_000), spec::lbm().trace(2_000)])
            .expect_err("corrupted shared book must not pass the audit");
        let PipelineError::Audit { stage, detail, .. } = err else {
            panic!("{}: expected an audit error, got {err}", cfg.name);
        };
        assert_eq!(stage, "occupancy", "{}", cfg.name);
        assert!(
            detail.contains("L3 MSHR"),
            "{}: detail `{detail}`",
            cfg.name
        );
    }
}

#[test]
fn audited_run_reproduces_the_plain_run() {
    let w = spec::mcf();
    for cfg in cores() {
        let plain = Session::new(cfg.clone())
            .run(w.trace(8_000))
            .expect("plain run completes");
        let audited = Session::new(cfg.clone())
            .audit(true)
            .run(w.trace(8_000))
            .expect("audited run is clean");
        assert_eq!(
            plain.result, audited.result,
            "{}: counters differ",
            cfg.name
        );
        assert_eq!(
            plain.multi.commit.normalized(),
            audited.multi.commit.normalized(),
            "{}: commit stack differs",
            cfg.name
        );
    }
}

#[test]
fn corrupting_any_stage_trips_the_auditor_with_that_stage() {
    let w = spec::xz();
    for stage in [Stage::Fetch, Stage::Dispatch, Stage::Issue, Stage::Commit] {
        let fault = FaultSpec {
            stage,
            component: Component::Dcache,
            cycle: 500,
            amount: 0.25,
        };
        let err = Session::new(CoreConfig::broadwell())
            .with_fault_injection(fault)
            .run(w.trace(5_000))
            .expect_err("corrupted books must not pass the audit");
        let PipelineError::Audit {
            stage: found,
            cycle,
            ..
        } = err
        else {
            panic!("{stage}: expected an audit error, got {err}");
        };
        assert_eq!(found, stage.to_string(), "wrong stage blamed");
        assert!(cycle >= 500, "violation before the fault was injected");
    }
}

#[test]
fn fault_detection_works_under_smt() {
    let fault = FaultSpec {
        stage: Stage::Commit,
        component: Component::Base,
        cycle: 200,
        amount: -0.5,
    };
    let err = Session::new(CoreConfig::broadwell())
        .with_fault_injection(fault)
        .run_threads(vec![spec::mcf().trace(3_000), spec::lbm().trace(3_000)])
        .expect_err("fault on thread 0 must be detected");
    let PipelineError::Audit { thread, stage, .. } = err else {
        panic!("expected an audit error");
    };
    assert_eq!(thread, 0, "fault is injected into thread 0");
    assert_eq!(stage, "commit");
}
