//! Differential-oracle integration tests: the analytical model and the
//! cycle-level engine must agree, within the documented tolerance bands,
//! through the public facade. The full SPEC/DeepBench × BDW/KNL/SKX sweep
//! runs in CI via `cargo run --release --bin crosscheck`; this is the
//! always-on slice.

use mstacks::core::Session;
use mstacks::model::{CoreConfig, IdealFlags};
use mstacks::oracle::{crosscheck, predict, ToleranceBands, WorkloadSummary};
use mstacks::workloads::{spec, SharedTraceBuffer, TraceBuffer};

const UOPS: u64 = 40_000;

fn check(w: &mstacks::workloads::Workload, cfg: &CoreConfig) {
    // One capture feeds both the oracle profile and the detailed run.
    let buf = TraceBuffer::capture(w, UOPS).shared();
    let summary = WorkloadSummary::profile(cfg, IdealFlags::none(), buf.cursor());
    let prediction = predict(cfg, &summary);
    let report = Session::new(cfg.clone())
        .run(buf.cursor())
        .unwrap_or_else(|e| panic!("{} on {}: {e}", w.name(), cfg.name));
    let cmp = crosscheck(&prediction, &report.multi, &ToleranceBands::default());
    assert!(cmp.pass(), "{} on {} diverged:\n{cmp}", w.name(), cfg.name);
}

#[test]
fn memory_bound_profile_agrees_on_all_cores() {
    for cfg in [
        CoreConfig::broadwell(),
        CoreConfig::knights_landing(),
        CoreConfig::skylake_server(),
    ] {
        check(&spec::mcf(), &cfg);
    }
}

#[test]
fn branchy_profile_agrees() {
    check(&spec::deepsjeng(), &CoreConfig::broadwell());
    check(&spec::exchange2(), &CoreConfig::knights_landing());
}

#[test]
fn streaming_profile_agrees() {
    check(&spec::lbm(), &CoreConfig::skylake_server());
}

#[test]
fn store_heavy_profile_agrees_on_atom() {
    // Regression for the historical nab/atom miss (0.0602 CPI residual):
    // the oracle's optimistic memory bound used to serialize store misses,
    // but the engine retires stores from the store queue without waiting
    // for the fill, so store misses only cost bandwidth. nab is ~1/3
    // stores and atom's small MSHR pool (mlp=4) left the lower bound above
    // the measured band. Needs 120k µops — the gap only opens once the
    // 96KB working set turns warm and measured CPI drops.
    let cfg = mstacks::model::coretab::builtin("atom").expect("atom is a builtin core");
    let w = spec::nab();
    let buf = TraceBuffer::capture(&w, 120_000).shared();
    let summary = WorkloadSummary::profile(&cfg, IdealFlags::none(), buf.cursor());
    let prediction = predict(&cfg, &summary);
    let report = Session::new(cfg.clone()).run(buf.cursor()).expect("runs");
    let cmp = crosscheck(&prediction, &report.multi, &ToleranceBands::default());
    assert!(cmp.pass(), "nab on atom diverged:\n{cmp}");
    // The fix is a tighter *model*, not a widened band: the optimistic
    // memory bound must actually sit at or below the measured band's
    // widened ceiling rather than being waved through.
    let mem = prediction.interval(mstacks::oracle::OracleComponent::Memory);
    assert!(
        mem.lo < 1.0,
        "store-exclusive memory lower bound regressed: {mem}"
    );
}

#[test]
fn profiling_is_deterministic() {
    let cfg = CoreConfig::broadwell();
    let w = spec::omnetpp();
    let a = WorkloadSummary::profile(&cfg, IdealFlags::none(), w.trace(10_000));
    let b = WorkloadSummary::profile(&cfg, IdealFlags::none(), w.trace(10_000));
    assert_eq!(a.uops, b.uops);
    assert_eq!(a.mispredicts, b.mispredicts);
    assert_eq!(a.dcache.total(), b.dcache.total());
    assert_eq!(a.icache.total(), b.icache.total());
    assert_eq!(a.critpath_cfg.to_bits(), b.critpath_cfg.to_bits());
    assert_eq!(a.critpath_unit.to_bits(), b.critpath_unit.to_bits());
}

#[test]
fn a_deliberately_broken_prediction_is_caught() {
    // The harness must actually be able to fail: corrupt the memory
    // interval far outside any band and expect a divergence verdict.
    let cfg = CoreConfig::broadwell();
    let buf = TraceBuffer::capture(&spec::mcf(), UOPS).shared();
    let summary = WorkloadSummary::profile(&cfg, IdealFlags::none(), buf.cursor());
    let mut prediction = predict(&cfg, &summary);
    prediction.total = mstacks::core::Interval::new(90.0, 95.0);
    let report = Session::new(cfg.clone()).run(buf.cursor()).expect("runs");
    let cmp = crosscheck(&prediction, &report.multi, &ToleranceBands::default());
    assert!(!cmp.pass());
    assert!(cmp.failures().any(|c| c.label == "total"));
}
