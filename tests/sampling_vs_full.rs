//! Metamorphic tests for interval sampling: a sampled run must bracket
//! the full run's CPI stack within its own confidence intervals (plus
//! the documented 2% systematic-error budget), and the degenerate plan
//! (`ff = 0`) must be bit-identical to the full run.

use mstacks::core::{Component, SamplePlan, Session, COMPONENTS};
use mstacks::model::CoreConfig;
use mstacks::workloads::WindowFn;
use mstacks::workloads::{spec, SharedTraceBuffer, TraceBuffer, Workload};

const TOTAL: u64 = 120_000;

/// The sampling plan the tests exercise: 500 warmup + 2 500 measured per
/// window, 12 000 fast-forwarded → period 15 000, 8 windows over `TOTAL`,
/// 20% of the trace executed in detail.
fn plan() -> SamplePlan {
    SamplePlan::new(500, 2_500, 12_000)
}

fn buffer(w: &Workload) -> std::sync::Arc<TraceBuffer> {
    TraceBuffer::capture(w, TOTAL).shared()
}

/// Runs `w` on `cfg` both ways and checks total CPI and every
/// per-stage/per-component CPI against the sampling estimate ± its CI
/// plus a 2%-of-total-CPI systematic budget (warmup bias, window-edge
/// drain).
fn check_brackets(w: &Workload, cfg: &CoreConfig) {
    let buf = buffer(w);
    let session = Session::new(cfg.clone());
    let full = session
        .run(buf.cursor())
        .unwrap_or_else(|e| panic!("{} on {}: {e}", w.name(), cfg.name));
    let sampled = session
        .run_sampled(TOTAL, plan(), &buf)
        .unwrap_or_else(|e| panic!("{} on {} sampled: {e}", w.name(), cfg.name));

    let full_cpi = full.cpi();
    let budget = 0.02 * full_cpi;
    let d = (sampled.cpi_mean - full_cpi).abs();
    assert!(
        d <= sampled.cpi_ci95 + budget,
        "{} on {}: sampled CPI {} ± {} vs full {} (|Δ| = {d})",
        w.name(),
        cfg.name,
        sampled.cpi_mean,
        sampled.cpi_ci95,
        full_cpi,
    );

    // Per-component bracketing at every stage, via the aggregate stacks.
    let pairs = [
        (&sampled.report.multi.dispatch, &full.multi.dispatch),
        (&sampled.report.multi.issue, &full.multi.issue),
        (&sampled.report.multi.commit, &full.multi.commit),
    ];
    for (s, f) in pairs {
        for &c in &COMPONENTS {
            let ci = sampled.ci_of(s.stage, c).map_or(0.0, |entry| entry.ci95);
            let d = (s.cpi_of(c) - f.cpi_of(c)).abs();
            assert!(
                d <= ci + budget,
                "{} on {} {} {}: sampled {} vs full {} (ci {ci}, budget {budget})",
                w.name(),
                cfg.name,
                s.stage,
                c,
                s.cpi_of(c),
                f.cpi_of(c),
            );
        }
    }
}

#[test]
fn memory_bound_profile_brackets_on_all_cores() {
    for cfg in [
        CoreConfig::broadwell(),
        CoreConfig::knights_landing(),
        CoreConfig::skylake_server(),
    ] {
        check_brackets(&spec::mcf(), &cfg);
    }
}

#[test]
fn branchy_profile_brackets() {
    check_brackets(&spec::deepsjeng(), &CoreConfig::broadwell());
}

#[test]
fn streaming_profile_brackets() {
    check_brackets(&spec::lbm(), &CoreConfig::skylake_server());
}

#[test]
fn compute_profile_brackets() {
    check_brackets(&spec::x264(), &CoreConfig::broadwell());
}

#[test]
fn ff_zero_is_bit_identical_to_full_run() {
    let buf = buffer(&spec::mcf());
    let session = Session::new(CoreConfig::broadwell());
    let full = session.run(buf.cursor()).expect("full run");
    let degenerate = session
        .run_sampled(TOTAL, SamplePlan::new(0, TOTAL, 0), &buf)
        .expect("degenerate sampled run");
    // Same engine, same trace, same path → every field identical,
    // including the dyadic-rational stack counts.
    assert_eq!(degenerate.report, full);
    assert_eq!(degenerate.windows, 1);
    assert_eq!(degenerate.cpi_ci95, 0.0);
    assert_eq!(degenerate.sampled_uops, TOTAL);
}

#[test]
fn batched_warming_is_bit_identical_to_the_iterator_fallback() {
    // The pre-decoded buffer warms fast-forward segments straight out of
    // its packed columns; WindowFn warms by materializing each µop. The
    // two must drive the identical warm-call sequence, so entire sampled
    // reports must match bit for bit.
    let buf = buffer(&spec::mcf());
    let session = Session::new(CoreConfig::broadwell());
    let batched = session.run_sampled(TOTAL, plan(), &buf).expect("batched");
    let fallback = session
        .run_sampled(TOTAL, plan(), &WindowFn(|s, e| buf.window(s, e)))
        .expect("fallback");
    assert_eq!(batched, fallback);
}

#[test]
fn sampled_run_is_deterministic() {
    let buf = buffer(&spec::gcc());
    let session = Session::new(CoreConfig::broadwell());
    let a = session.run_sampled(TOTAL, plan(), &buf).expect("first run");
    let b = session
        .run_sampled(TOTAL, plan(), &buf)
        .expect("second run");
    assert_eq!(a, b, "sampling must be bit-deterministic");
}

#[test]
fn sampled_run_measures_only_the_detailed_fraction() {
    let buf = buffer(&spec::mcf());
    let p = plan();
    let sampled = Session::new(CoreConfig::broadwell())
        .run_sampled(TOTAL, p, &buf)
        .expect("sampled run");
    // 8 full periods of 15 000 over 120 000 micro-ops.
    assert_eq!(sampled.windows, 8);
    // Measured segments stop on cycle boundaries, so each may overshoot
    // `detailed` by up to the commit width minus one micro-ops.
    assert!(
        sampled.sampled_uops >= 8 * p.detailed && sampled.sampled_uops < 8 * (p.detailed + 16),
        "sampled {} vs planned {}",
        sampled.sampled_uops,
        8 * p.detailed
    );
    assert_eq!(sampled.total_uops, TOTAL);
    let measured_frac = sampled.sampled_uops as f64 / TOTAL as f64;
    assert!(
        measured_frac < 0.25,
        "detail fraction {measured_frac} defeats the point of sampling"
    );
    // The engine's cumulative counters must exclude fast-forwarded work:
    // warmup + detailed + cooldown micro-ops only.
    let cooldown = p.ff.min(mstacks::core::sampling::COOLDOWN_UOPS);
    assert_eq!(
        sampled.report.result.committed_uops,
        8 * (p.warmup + p.detailed + cooldown)
    );
    // Aggregate stacks are conservative over the measured windows.
    for s in sampled.report.multi.stacks() {
        let total: f64 = s.total_cycles();
        assert!(
            (total - s.cycles as f64).abs() < 1e-6,
            "{}: stack sums to {total} ≠ {} measured cycles",
            s.stage,
            s.cycles
        );
    }
}

#[test]
fn warmup_tightens_the_estimate_on_a_memory_bound_profile() {
    // Without warmup, every window starts on a drained pipeline whose
    // first instructions see cold MSHRs/queues; with warmup those edge
    // effects fall outside the measured segment. The warmed estimate must
    // not be farther from the full run than the cold one by more than its
    // own confidence interval (it is usually strictly closer).
    let buf = buffer(&spec::mcf());
    let cfg = CoreConfig::broadwell();
    let session = Session::new(cfg);
    let full_cpi = session.run(buf.cursor()).expect("full run").cpi();
    let cold = session
        .run_sampled(TOTAL, SamplePlan::new(0, 3_000, 12_000), &buf)
        .expect("cold windows");
    let warm = session
        .run_sampled(TOTAL, SamplePlan::new(500, 2_500, 12_000), &buf)
        .expect("warm windows");
    let cold_err = (cold.cpi_mean - full_cpi).abs();
    let warm_err = (warm.cpi_mean - full_cpi).abs();
    assert!(
        warm_err <= cold_err + warm.cpi_ci95,
        "warmup made the estimate worse: warm |Δ| = {warm_err}, cold |Δ| = {cold_err}, ci = {}",
        warm.cpi_ci95
    );
}

#[test]
fn component_ci_table_covers_all_stages() {
    let buf = buffer(&spec::mcf());
    let sampled = Session::new(CoreConfig::broadwell())
        .run_sampled(TOTAL, plan(), &buf)
        .expect("sampled run");
    // 4 stages × 10 components, all present for a single-thread run.
    assert_eq!(sampled.components.len(), 4 * COMPONENTS.len());
    // The Base component is always busy — its mean must be positive and
    // its interval finite.
    for entry in &sampled.components {
        if entry.component == Component::Base {
            assert!(entry.mean_cpi > 0.0, "{:?}", entry.stage);
            assert!(entry.ci95.is_finite());
        }
    }
}
