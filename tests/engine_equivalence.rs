//! The unified engine contract: a 1-thread SMT session is *the same
//! machine* as a classic single-core run, and the parallel sweep executor
//! is invisible in the results.
//!
//! Both code paths now instantiate the same thread-parameterized
//! [`mstacks::pipeline::Engine`], so these are exact (`==`) comparisons,
//! not tolerance checks: every CPI-stack value, every pipeline/memory
//! statistic and every committed micro-op count must match bit for bit.

use mstacks::core::Session;
use mstacks::prelude::*;
use mstacks_bench::Sweep;
use mstacks_workloads::{deepbench, GemmStyle, SharedTraceBuffer, TraceBuffer};

/// The three profile classes the ISSUE calls out: a memory-bound SPEC
/// profile, a microcode/FP-heavy one, and a DeepBench sgemm kernel.
fn workloads() -> Vec<Workload> {
    let mut cfgs = deepbench::sgemm_train_configs();
    vec![
        spec::mcf(),
        spec::povray(),
        Workload::Gemm {
            cfg: cfgs.remove(0),
            style: GemmStyle::KnlJit,
            lanes: 16,
        },
    ]
}

#[test]
fn one_thread_session_is_bit_identical_to_single_core_run() {
    let uops = 15_000u64;
    for w in workloads() {
        let buf = TraceBuffer::capture(&w, uops).shared();
        for cfg in [CoreConfig::broadwell(), CoreConfig::knights_landing()] {
            let single = Session::new(cfg.clone())
                .run(buf.cursor())
                .expect("single-core run completes");
            let smt = Session::new(cfg.clone())
                .run_threads(vec![buf.cursor()])
                .expect("1-thread session completes");
            assert_eq!(smt.threads.len(), 1);
            let t = &smt.threads[0];
            let label = format!("{} on {}", w.name(), cfg.name);

            assert_eq!(
                t.result.committed_uops, single.result.committed_uops,
                "{label}: committed micro-ops differ"
            );
            assert_eq!(t.result, single.result, "{label}: pipeline results differ");
            assert_eq!(t.multi, single.multi, "{label}: CPI stacks differ");
            assert_eq!(t.flops, single.flops, "{label}: FLOPS stacks differ");
        }
    }
}

#[test]
fn one_thread_session_under_idealization_stays_identical() {
    let uops = 12_000u64;
    let ideal = IdealFlags::none()
        .with_perfect_dcache()
        .with_perfect_bpred();
    let buf = TraceBuffer::capture(&spec::mcf(), uops).shared();
    let single = Session::new(CoreConfig::broadwell())
        .with_ideal(ideal)
        .run(buf.cursor())
        .expect("single-core run completes");
    let smt = Session::new(CoreConfig::broadwell())
        .with_ideal(ideal)
        .run_threads(vec![buf.cursor()])
        .expect("1-thread session completes");
    assert_eq!(smt.threads[0].result, single.result);
    assert_eq!(smt.threads[0].multi, single.multi);
}

#[test]
fn parallel_sweep_matches_serial_in_values_and_order() {
    let sweep = Sweep::product(
        &workloads(),
        &[CoreConfig::broadwell()],
        &[IdealFlags::none(), IdealFlags::none().with_perfect_dcache()],
        10_000,
    );
    let serial = sweep.run_serial();
    let parallel = sweep.run();
    assert_eq!(serial.len(), parallel.len());
    assert_eq!(serial.len(), sweep.len());
    for ((s, p), point) in serial.iter().zip(&parallel).zip(sweep.points()) {
        // Order: each result sits in the slot its point was declared in.
        assert_eq!(s.point.label(), point.label());
        assert_eq!(p.point.label(), point.label());
        // Values: byte-for-byte the same simulation.
        assert_eq!(
            s.report,
            p.report,
            "parallel report differs at {}",
            point.label()
        );
    }
}
