//! Wrong-path discrimination schemes (paper §III-B) and reproducibility.

use mstacks::prelude::*;
use mstacks::workloads::{SharedTraceBuffer, TraceBuffer};

#[test]
fn simple_mode_recovers_commit_base() {
    // The simple retire-slot scheme forces the dispatch/issue base to the
    // commit base and moves the surplus to the branch component.
    let w = spec::deepsjeng(); // branchy → lots of wrong-path slots
    let r = Session::new(CoreConfig::broadwell())
        .with_badspec(BadSpecMode::SimpleRetireSlots)
        .run(w.trace(20_000))
        .expect("simulation completes");
    let commit_base = r.multi.commit.cycles_of(Component::Base);
    for s in [&r.multi.dispatch, &r.multi.issue] {
        assert!(
            (s.cycles_of(Component::Base) - commit_base).abs() < 1e-6,
            "{}: base not corrected to the commit base",
            s.stage
        );
    }
}

#[test]
fn simple_mode_close_to_ground_truth() {
    // On the branch component the simple scheme approximates ground truth:
    // "this will account for the largest part of the branch miss component"
    // (paper §III-B).
    let buf = TraceBuffer::capture(&spec::deepsjeng(), 30_000).shared();
    let gt = Session::new(CoreConfig::broadwell())
        .run(buf.cursor())
        .expect("simulation completes");
    let simple = Session::new(CoreConfig::broadwell())
        .with_badspec(BadSpecMode::SimpleRetireSlots)
        .run(buf.cursor())
        .expect("simulation completes");
    let g = gt.multi.dispatch.cpi_of(Component::Bpred);
    let s = simple.multi.dispatch.cpi_of(Component::Bpred);
    assert!(g > 0.02, "profile must have a real bpred component: {g}");
    assert!(
        (s - g).abs() / g < 0.5,
        "simple-scheme bpred {s:.4} too far from ground truth {g:.4}"
    );
}

#[test]
fn speculative_counters_close_to_ground_truth() {
    let buf = TraceBuffer::capture(&spec::leela(), 30_000).shared();
    let gt = Session::new(CoreConfig::broadwell())
        .run(buf.cursor())
        .expect("simulation completes");
    let sc = Session::new(CoreConfig::broadwell())
        .with_badspec(BadSpecMode::SpeculativeCounters)
        .run(buf.cursor())
        .expect("simulation completes");
    // Totals are identical (same execution)…
    assert!((gt.cpi() - sc.cpi()).abs() < 1e-9);
    // …and the big components agree loosely (the scheme re-attributes at
    // basic-block granularity).
    for c in [Component::Base, Component::Dcache] {
        let a = gt.multi.dispatch.cpi_of(c);
        let b = sc.multi.dispatch.cpi_of(c);
        assert!(
            (a - b).abs() < 0.15 * gt.cpi() + 1e-3,
            "{c}: ground truth {a:.4} vs speculative counters {b:.4}"
        );
    }
}

#[test]
fn all_modes_identical_without_speculation() {
    // With a perfect predictor there is no wrong path: the three schemes
    // must agree exactly.
    let buf = TraceBuffer::capture(&spec::lbm(), 15_000).shared();
    let run = |mode| {
        Session::new(CoreConfig::broadwell())
            .with_ideal(IdealFlags::none().with_perfect_bpred())
            .with_badspec(mode)
            .run(buf.cursor())
            .expect("simulation completes")
    };
    let gt = run(BadSpecMode::GroundTruth);
    let simple = run(BadSpecMode::SimpleRetireSlots);
    let sc = run(BadSpecMode::SpeculativeCounters);
    for c in [
        Component::Base,
        Component::Icache,
        Component::Bpred,
        Component::Dcache,
        Component::AluLat,
        Component::Depend,
    ] {
        let g = gt.multi.dispatch.cpi_of(c);
        assert!((simple.multi.dispatch.cpi_of(c) - g).abs() < 1e-9, "{c}");
        assert!((sc.multi.dispatch.cpi_of(c) - g).abs() < 1e-9, "{c}");
    }
}

#[test]
fn simulation_is_deterministic() {
    for w in [spec::mcf(), spec::povray()] {
        let buf = TraceBuffer::capture(&w, 15_000).shared();
        let a = Session::new(CoreConfig::knights_landing())
            .run(buf.cursor())
            .expect("simulation completes");
        let b = Session::new(CoreConfig::knights_landing())
            .run(buf.cursor())
            .expect("simulation completes");
        assert_eq!(a, b, "{} must be bit-identical across runs", w.name());
    }
}

#[test]
fn different_cores_differ() {
    // A compute-bound profile past its warmup: the 2-wide, high-latency
    // KNL is limited by width/latency where the 4-wide BDW is not.
    // (Memory-bound profiles can invert this: the KNL preset has more
    // per-core DRAM bandwidth, as the real parts did.)
    let buf = TraceBuffer::capture(&spec::imagick(), 40_000).shared();
    let bdw = Session::new(CoreConfig::broadwell())
        .run(buf.cursor())
        .expect("simulation completes");
    let knl = Session::new(CoreConfig::knights_landing())
        .run(buf.cursor())
        .expect("simulation completes");
    assert!(knl.cpi() > bdw.cpi(), "2-wide KNL must have higher CPI");
}
