//! Property tests aimed directly at the accounting algorithms, feeding
//! them synthetic per-cycle views (no pipeline in the loop).

use mstacks::core::{
    BadSpecMode, CommitAccountant, DispatchAccountant, FlopsAccountant, IssueAccountant,
};
use mstacks::mem::HitLevel;
use mstacks::model::{ElemType, FpOpKind, FrontendStall, MicroOp, UopKind, VecFpOp};
use mstacks::pipeline::{
    Blame, CommitView, DispatchView, FlopsBlame, IssueView, IssuedInfo, StageObserver,
};
use proptest::prelude::*;

fn arb_fe_stall() -> impl Strategy<Value = Option<FrontendStall>> {
    prop_oneof![
        Just(None),
        Just(Some(FrontendStall::Icache)),
        Just(Some(FrontendStall::Bpred)),
        Just(Some(FrontendStall::Microcode)),
    ]
}

fn arb_blame() -> impl Strategy<Value = Option<Blame>> {
    prop_oneof![
        Just(None),
        Just(Some(Blame::Dcache(HitLevel::L2))),
        Just(Some(Blame::Dcache(HitLevel::L3))),
        Just(Some(Blame::Dcache(HitLevel::Mem))),
        Just(Some(Blame::LongLat)),
        Just(Some(Blame::Depend)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever sequence of views the dispatch accountant sees, the stack
    /// sums to the cycle count and never goes negative.
    #[test]
    fn dispatch_accountant_conserves_cycles(
        views in proptest::collection::vec(
            (0u32..=4, 0u32..=4, any::<bool>(), arb_blame(), arb_fe_stall()),
            1..200,
        )
    ) {
        let mut a = DispatchAccountant::new(4, BadSpecMode::GroundTruth);
        let n_views = views.len();
        for (i, (n_extra, n_correct, backend, blame, fe)) in views.into_iter().enumerate() {
            let v = DispatchView {
                n_total: n_correct + n_extra.min(4 - n_correct),
                n_correct,
                backend_blocked: backend,
                smt_blocked: false,
                head_blame: blame,
                fe_stall: fe,
            };
            a.on_dispatch(i as u64, &v);
        }
        let s = a.finish(1_000, None);
        prop_assert!((s.total_cycles() - n_views as f64).abs() < 1e-6);
        for (c, v) in s.iter_cpi() {
            prop_assert!(v >= 0.0, "negative component {c}");
        }
    }

    /// Same conservation for the commit accountant. Commit can never
    /// exceed the commit width, so `n ≤ W` (wider stages drain their
    /// carry in trailing sub-width cycles; that path is pinned by the
    /// `wide_issue_carries_over` unit test).
    #[test]
    fn commit_accountant_conserves_cycles(
        views in proptest::collection::vec(
            (0u32..=4, any::<bool>(), arb_blame(), arb_fe_stall()),
            1..200,
        )
    ) {
        let mut a = CommitAccountant::new(4);
        let n_views = views.len();
        for (i, (n, rob_empty, blame, fe)) in views.into_iter().enumerate() {
            let v = CommitView {
                n,
                rob_empty,
                smt_blocked: false,
                fe_stall: fe,
                head_blame: if rob_empty { None } else { blame },
            };
            a.on_commit(i as u64, &v);
        }
        let s = a.finish(1_000);
        // Residual carry is folded into base at finish.
        prop_assert!((s.total_cycles() - n_views as f64).abs() < 1e-6);
    }

    /// The FLOPS accountant produces exactly one cycle of component mass
    /// per view, whatever mix of FMA/add/masked VFP µops is issued.
    #[test]
    fn flops_accountant_sums_to_one_per_cycle(
        cycles in proptest::collection::vec(
            (
                proptest::collection::vec((0u8..=1, 0u8..=16), 0..2),
                any::<bool>(),
                0u8..3,
            ),
            1..100,
        )
    ) {
        let mut a = FlopsAccountant::new(2, 16);
        let n_cycles = cycles.len();
        for (i, (vfps, vu_stolen, blame_sel)) in cycles.into_iter().enumerate() {
            let issued: Vec<IssuedInfo> = vfps
                .iter()
                .map(|&(is_fma, lanes)| IssuedInfo {
                    uop: MicroOp::new(
                        0,
                        UopKind::VecFp(VecFpOp {
                            op: if is_fma == 1 { FpOpKind::Fma } else { FpOpKind::Add },
                            active_lanes: lanes,
                            elem: ElemType::F32,
                        }),
                    ),
                    wrong_path: false,
                    on_vpu: true,
                })
                .collect();
            let vfp_blame = match blame_sel {
                0 => None,
                1 => Some(FlopsBlame::Memory),
                _ => Some(FlopsBlame::Depend),
            };
            let v = IssueView {
                n_total: issued.len() as u32,
                n_correct: issued.len() as u32,
                rs_empty: false,
                fe_stall: None,
                blocking_blame: None,
                structural: None,
                smt_blocked: false,
                issued: &issued,
                vfp_in_rs: vfp_blame.is_some(),
                vfp_blame,
                vu_used_by_non_vfp: vu_stolen,
            };
            a.on_issue(i as u64, &v);
        }
        let s = a.finish();
        prop_assert!(
            (s.total_cycles() - n_cycles as f64).abs() < 1e-9,
            "FLOPS stack sums to {} over {} cycles",
            s.total_cycles(),
            n_cycles
        );
        for (c, v) in s.iter_normalized() {
            prop_assert!(v >= -1e-12, "negative {c}");
        }
    }

    /// The issue accountant under the speculative-counter mode conserves
    /// cycles across any interleaving of dispatch/commit/squash events.
    #[test]
    fn speculative_mode_conserves_cycles(
        events in proptest::collection::vec(0u8..6, 1..300)
    ) {
        let mut a = IssueAccountant::new(2, BadSpecMode::SpeculativeCounters);
        let mut cycles = 0u64;
        let mut open_branches = 0u64;
        let branch = MicroOp::new(
            0x100,
            UopKind::Branch(mstacks::model::BranchInfo {
                taken: false,
                target: 0x200,
                fallthrough: 0x104,
                kind: mstacks::model::BranchKind::Cond,
            }),
        );
        for (i, e) in events.into_iter().enumerate() {
            let i = i as u64;
            match e {
                0 => {
                    a.on_issue(i, &IssueView {
                        n_total: 2, n_correct: 2, rs_empty: false, fe_stall: None,
                        blocking_blame: None, structural: None, smt_blocked: false,
                        issued: &[], vfp_in_rs: false, vfp_blame: None,
                        vu_used_by_non_vfp: false,
                    });
                    cycles += 1;
                }
                1 => {
                    a.on_issue(i, &IssueView {
                        n_total: 0, n_correct: 0, rs_empty: true,
                        fe_stall: Some(FrontendStall::Bpred),
                        blocking_blame: None, structural: None, smt_blocked: false,
                        issued: &[], vfp_in_rs: false, vfp_blame: None,
                        vu_used_by_non_vfp: false,
                    });
                    cycles += 1;
                }
                2 => {
                    a.on_issue(i, &IssueView {
                        n_total: 1, n_correct: 1, rs_empty: false, fe_stall: None,
                        blocking_blame: Some(Blame::Dcache(HitLevel::Mem)),
                        structural: None, smt_blocked: false,
                        issued: &[], vfp_in_rs: false, vfp_blame: None,
                        vu_used_by_non_vfp: false,
                    });
                    cycles += 1;
                }
                3 => {
                    a.on_dispatch_uop(i, &branch);
                    open_branches += 1;
                }
                4 if open_branches > 0 => {
                    a.on_commit_uop(i, &branch);
                    open_branches -= 1;
                }
                _ if open_branches > 0 => {
                    a.on_squash(i, 5, 1);
                    open_branches -= 1;
                }
                _ => {}
            }
        }
        let s = a.finish(1_000, None);
        prop_assert!(
            (s.total_cycles() - cycles as f64).abs() < 1e-6,
            "{} vs {}",
            s.total_cycles(),
            cycles
        );
    }
}
