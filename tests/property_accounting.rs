//! Randomized tests aimed directly at the accounting algorithms, feeding
//! them synthetic per-cycle views (no pipeline in the loop).
//!
//! These were originally `proptest` properties; they now draw their cases
//! from the in-repo seeded PRNG so the suite builds offline and every run
//! explores exactly the same case set.

use mstacks::core::{
    BadSpecMode, CommitAccountant, DispatchAccountant, FlopsAccountant, IssueAccountant,
};
use mstacks::mem::HitLevel;
use mstacks::model::rng::SmallRng;
use mstacks::model::{ElemType, FpOpKind, FrontendStall, MicroOp, UopKind, VecFpOp};
use mstacks::pipeline::{
    Blame, CommitView, DispatchView, FlopsBlame, IssueView, IssuedInfo, StageObserver,
};

const CASES: u64 = 64;

fn rand_fe_stall(rng: &mut SmallRng) -> Option<FrontendStall> {
    match rng.gen_range(0u8..4) {
        0 => None,
        1 => Some(FrontendStall::Icache),
        2 => Some(FrontendStall::Bpred),
        _ => Some(FrontendStall::Microcode),
    }
}

fn rand_blame(rng: &mut SmallRng) -> Option<Blame> {
    match rng.gen_range(0u8..6) {
        0 => None,
        1 => Some(Blame::Dcache(HitLevel::L2)),
        2 => Some(Blame::Dcache(HitLevel::L3)),
        3 => Some(Blame::Dcache(HitLevel::Mem)),
        4 => Some(Blame::LongLat),
        _ => Some(Blame::Depend),
    }
}

/// Whatever sequence of views the dispatch accountant sees, the stack
/// sums to the cycle count and never goes negative.
#[test]
fn dispatch_accountant_conserves_cycles() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xD15_0000 + case);
        let n_views = rng.gen_range(1usize..200);
        let mut a = DispatchAccountant::new(4, BadSpecMode::GroundTruth);
        for i in 0..n_views {
            let n_extra = rng.gen_range(0u32..=4);
            let n_correct = rng.gen_range(0u32..=4);
            let v = DispatchView {
                n_total: n_correct + n_extra.min(4 - n_correct),
                n_correct,
                backend_blocked: rng.gen_bool(0.5),
                smt_blocked: false,
                head_blame: rand_blame(&mut rng),
                fe_stall: rand_fe_stall(&mut rng),
            };
            a.on_dispatch(i as u64, &v);
        }
        let s = a.finish(1_000, None);
        assert!(
            (s.total_cycles() - n_views as f64).abs() < 1e-6,
            "case {case}: {} ≠ {}",
            s.total_cycles(),
            n_views
        );
        for (c, v) in s.iter_cpi() {
            assert!(v >= 0.0, "case {case}: negative component {c}");
        }
    }
}

/// Regression pinned from the retired `proptest-regressions` seed file
/// (case `57e14d1c…`, shrunk to `views = [(5, false, None, None)]`): a
/// single dispatch view delivering more micro-ops than the accounting
/// width. The width normalizer must clamp the cycle at 1.0 and the
/// finalize step must fold the excess carry (5/4 − 1 = 0.25) into the
/// base component — not drop it, and not charge it to a stall bucket.
#[test]
fn dispatch_view_wider_than_accounting_width_folds_carry() {
    use mstacks::core::Component;
    let mut a = DispatchAccountant::new(4, BadSpecMode::GroundTruth);
    a.on_dispatch(
        0,
        &DispatchView {
            n_total: 5,
            n_correct: 5,
            backend_blocked: false,
            smt_blocked: false,
            head_blame: None,
            fe_stall: None,
        },
    );
    let s = a.finish(5, None);
    // One elapsed cycle plus the folded 0.25-cycle carry, all of it base.
    assert!(
        (s.total_cycles() - 1.25).abs() < 1e-9,
        "{}",
        s.total_cycles()
    );
    assert!((s.cycles_of(Component::Base) - 1.25).abs() < 1e-9);
    for (c, v) in s.iter_cpi() {
        assert!(v >= 0.0, "negative component {c}");
    }
}

/// Same conservation for the commit accountant. Commit can never
/// exceed the commit width, so `n ≤ W` (wider stages drain their
/// carry in trailing sub-width cycles; that path is pinned by the
/// `wide_issue_carries_over` unit test).
#[test]
fn commit_accountant_conserves_cycles() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xC0_3317 + case);
        let n_views = rng.gen_range(1usize..200);
        let mut a = CommitAccountant::new(4);
        for i in 0..n_views {
            let rob_empty = rng.gen_bool(0.5);
            let blame = rand_blame(&mut rng);
            let v = CommitView {
                n: rng.gen_range(0u32..=4),
                rob_empty,
                smt_blocked: false,
                fe_stall: rand_fe_stall(&mut rng),
                head_blame: if rob_empty { None } else { blame },
            };
            a.on_commit(i as u64, &v);
        }
        let s = a.finish(1_000);
        // Residual carry is folded into base at finish.
        assert!(
            (s.total_cycles() - n_views as f64).abs() < 1e-6,
            "case {case}: {} ≠ {}",
            s.total_cycles(),
            n_views
        );
    }
}

/// The FLOPS accountant produces exactly one cycle of component mass
/// per view, whatever mix of FMA/add/masked VFP µops is issued.
#[test]
fn flops_accountant_sums_to_one_per_cycle() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xF70_9500 + case);
        let n_cycles = rng.gen_range(1usize..100);
        let mut a = FlopsAccountant::new(2, 16);
        for i in 0..n_cycles {
            let n_vfp = rng.gen_range(0usize..2);
            let issued: Vec<IssuedInfo> = (0..n_vfp)
                .map(|_| IssuedInfo {
                    uop: MicroOp::new(
                        0,
                        UopKind::VecFp(VecFpOp {
                            op: if rng.gen_bool(0.5) {
                                FpOpKind::Fma
                            } else {
                                FpOpKind::Add
                            },
                            active_lanes: rng.gen_range(0u8..=16),
                            elem: ElemType::F32,
                        }),
                    ),
                    wrong_path: false,
                    on_vpu: true,
                })
                .collect();
            let vfp_blame = match rng.gen_range(0u8..3) {
                0 => None,
                1 => Some(FlopsBlame::Memory),
                _ => Some(FlopsBlame::Depend),
            };
            let v = IssueView {
                n_total: issued.len() as u32,
                n_correct: issued.len() as u32,
                rs_empty: false,
                fe_stall: None,
                blocking_blame: None,
                structural: None,
                smt_blocked: false,
                issued: &issued,
                vfp_in_rs: vfp_blame.is_some(),
                vfp_blame,
                vu_used_by_non_vfp: rng.gen_bool(0.5),
            };
            a.on_issue(i as u64, &v);
        }
        let s = a.finish();
        assert!(
            (s.total_cycles() - n_cycles as f64).abs() < 1e-9,
            "case {case}: FLOPS stack sums to {} over {} cycles",
            s.total_cycles(),
            n_cycles
        );
        for (c, v) in s.iter_normalized() {
            assert!(v >= -1e-12, "case {case}: negative {c}");
        }
    }
}

/// The issue accountant under the speculative-counter mode conserves
/// cycles across any interleaving of dispatch/commit/squash events.
#[test]
fn speculative_mode_conserves_cycles() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x59EC_0000 + case);
        let n_events = rng.gen_range(1usize..300);
        let mut a = IssueAccountant::new(2, BadSpecMode::SpeculativeCounters);
        let mut cycles = 0u64;
        let mut open_branches = 0u64;
        let branch = MicroOp::new(
            0x100,
            UopKind::Branch(mstacks::model::BranchInfo {
                taken: false,
                target: 0x200,
                fallthrough: 0x104,
                kind: mstacks::model::BranchKind::Cond,
            }),
        );
        for i in 0..n_events {
            let i = i as u64;
            match rng.gen_range(0u8..6) {
                0 => {
                    a.on_issue(
                        i,
                        &IssueView {
                            n_total: 2,
                            n_correct: 2,
                            rs_empty: false,
                            fe_stall: None,
                            blocking_blame: None,
                            structural: None,
                            smt_blocked: false,
                            issued: &[],
                            vfp_in_rs: false,
                            vfp_blame: None,
                            vu_used_by_non_vfp: false,
                        },
                    );
                    cycles += 1;
                }
                1 => {
                    a.on_issue(
                        i,
                        &IssueView {
                            n_total: 0,
                            n_correct: 0,
                            rs_empty: true,
                            fe_stall: Some(FrontendStall::Bpred),
                            blocking_blame: None,
                            structural: None,
                            smt_blocked: false,
                            issued: &[],
                            vfp_in_rs: false,
                            vfp_blame: None,
                            vu_used_by_non_vfp: false,
                        },
                    );
                    cycles += 1;
                }
                2 => {
                    a.on_issue(
                        i,
                        &IssueView {
                            n_total: 1,
                            n_correct: 1,
                            rs_empty: false,
                            fe_stall: None,
                            blocking_blame: Some(Blame::Dcache(HitLevel::Mem)),
                            structural: None,
                            smt_blocked: false,
                            issued: &[],
                            vfp_in_rs: false,
                            vfp_blame: None,
                            vu_used_by_non_vfp: false,
                        },
                    );
                    cycles += 1;
                }
                3 => {
                    a.on_dispatch_uop(i, &branch);
                    open_branches += 1;
                }
                4 if open_branches > 0 => {
                    a.on_commit_uop(i, &branch);
                    open_branches -= 1;
                }
                _ if open_branches > 0 => {
                    a.on_squash(i, 5, 1);
                    open_branches -= 1;
                }
                _ => {}
            }
        }
        let s = a.finish(1_000, None);
        assert!(
            (s.total_cycles() - cycles as f64).abs() < 1e-6,
            "case {case}: {} vs {}",
            s.total_cycles(),
            cycles
        );
    }
}
