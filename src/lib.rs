//! # mstacks — Multi-Stage CPI Stacks and FLOPS Stacks
//!
//! A cycle-level out-of-order core simulator with the multi-stage
//! CPI-stack and FLOPS-stack accounting of *"Extending the Performance
//! Analysis Tool Box: Multi-Stage CPI Stacks and FLOPS Stacks"* (Eyerman,
//! Heirman, Du Bois, Hur; ISPASS 2018).
//!
//! This crate is the facade: it re-exports the public API of the workspace
//! crates. Most users need three things:
//!
//! * a **workload** — a named profile from [`workloads::spec`], a
//!   DeepBench-like kernel ([`workloads::Workload::Gemm`] /
//!   [`workloads::Workload::Conv`]), or any iterator of
//!   [`model::MicroOp`]s;
//! * a **core configuration** — [`model::CoreConfig::broadwell`],
//!   [`model::CoreConfig::knights_landing`] or
//!   [`model::CoreConfig::skylake_server`], optionally with
//!   [`model::IdealFlags`] idealizations;
//! * a **session** — [`core::Session`] runs one trace per hardware thread
//!   (one for a classic single-core run) and returns the three CPI stacks,
//!   the FLOPS stack and all pipeline/memory statistics.
//!
//! # Example
//!
//! ```
//! use mstacks::core::Session;
//! use mstacks::model::{CoreConfig, IdealFlags};
//! use mstacks::workloads::spec;
//!
//! let report = Session::new(CoreConfig::broadwell())
//!     .run(spec::mcf().trace(20_000))
//!     .expect("simulation completes");
//!
//! // The three stacks agree on total CPI but disagree on the split —
//! // that disagreement is the information (paper §III-A).
//! let cpi = report.cpi();
//! for stack in report.multi.stacks() {
//!     assert!((stack.total_cpi() - cpi).abs() < 1e-6);
//! }
//! // Bounds on the benefit of a perfect D-cache:
//! let (lo, hi) = report.multi.bounds(mstacks::core::Component::Dcache);
//! assert!(lo <= hi);
//! ```

pub use mstacks_core as core;
pub use mstacks_frontend as frontend;
pub use mstacks_mem as mem;
pub use mstacks_model as model;
pub use mstacks_oracle as oracle;
pub use mstacks_pipeline as pipeline;
pub use mstacks_stats as stats;
pub use mstacks_workloads as workloads;

/// Convenience prelude: the types almost every user touches.
pub mod prelude {
    #[allow(deprecated)]
    pub use mstacks_core::Simulation;
    pub use mstacks_core::{
        BadSpecMode, CoRun, CoRunReport, Component, CpiStack, FlopsComponent, FlopsStack,
        MultiStackReport, Session, SessionReport, SimReport, Stage, ThreadReport,
    };
    pub use mstacks_model::{CoreConfig, IdealFlags, MicroOp, UopKind};
    pub use mstacks_workloads::{spec, Workload};
}
